package experiments

import (
	"reflect"
	"testing"

	"mcsched/internal/core"
)

// tinyPlacementConfig keeps the sweep small enough for -race CI while still
// crossing several UB buckets.
func tinyPlacementConfig() PlacementConfig {
	return PlacementConfig{
		M:         2,
		PH:        0.5,
		SetsPerUB: 2,
		Seed:      7,
		UBMin:     0.4,
		UBMax:     0.7,
	}
}

func TestPlacementValidate(t *testing.T) {
	bad := []PlacementConfig{
		{M: 0, PH: 0.5, SetsPerUB: 1},
		{M: 2, PH: -0.1, SetsPerUB: 1},
		{M: 2, PH: 0.5, SetsPerUB: 0},
		{M: 2, PH: 0.5, SetsPerUB: 1, Placements: []string{"nosuch"}},
		{M: 2, PH: 0.5, SetsPerUB: 1, Placements: []string{"ff@9"}},
	}
	for _, cfg := range bad {
		if _, err := RunPlacement(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	cfg := tinyPlacementConfig()
	a, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scores) != len(core.Placers()) {
		t.Fatalf("default sweep scored %d heuristics, want the full registry (%d)",
			len(a.Scores), len(core.Placers()))
	}
	for i := range a.Scores {
		sa, sb := a.Scores[i], b.Scores[i]
		sa.Series, sb.Series = Series{}, Series{}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("run-to-run divergence for %s:\n%+v\n%+v", a.Scores[i].Name, sa, sb)
		}
		if !reflect.DeepEqual(a.Scores[i].Series, b.Scores[i].Series) {
			t.Fatalf("series divergence for %s", a.Scores[i].Name)
		}
	}
	if a.GenFailures != b.GenFailures {
		t.Fatalf("gen failures diverged: %d vs %d", a.GenFailures, b.GenFailures)
	}
}

func TestPlacementWorkerIndependence(t *testing.T) {
	cfg := tinyPlacementConfig()
	cfg.Workers = 1
	serial, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	fanned, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Scores {
		sa, sb := serial.Scores[i], fanned.Scores[i]
		sa.Series, sb.Series = Series{}, Series{}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("worker-count changed %s:\n1 worker:  %+v\n4 workers: %+v", serial.Scores[i].Name, sa, sb)
		}
	}
}

func TestPlacementScoresSane(t *testing.T) {
	cfg := tinyPlacementConfig()
	cfg.Placements = []string{"udp-ca", "ff", "prm-ll"}
	res, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scored %d heuristics, want 3", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s.Offered == 0 || s.Sets == 0 {
			t.Fatalf("%s evaluated nothing: %+v", s.Name, s)
		}
		if s.Admitted > s.Offered || s.FullSets > s.Sets {
			t.Fatalf("%s over-counted: %+v", s.Name, s)
		}
		if ar := s.AcceptanceRatio(); ar <= 0 || ar > 1 {
			t.Fatalf("%s acceptance %g outside (0,1]", s.Name, ar)
		}
		if f := s.Fragmentation(); f < 0 || f >= 1 {
			t.Fatalf("%s fragmentation %g outside [0,1)", s.Name, f)
		}
		if s.Probes == 0 {
			t.Fatalf("%s counted no analysis probes", s.Name)
		}
		if len(s.Series.Points) == 0 {
			t.Fatalf("%s has no acceptance curve", s.Name)
		}
	}
	if _, ok := res.ScoreByName("ff"); !ok {
		t.Fatal("ScoreByName missed ff")
	}
	if _, ok := res.ScoreByName("nf"); ok {
		t.Fatal("ScoreByName invented nf")
	}
	if out := PlacementSummary(res); len(out) == 0 {
		t.Fatal("empty summary")
	}
}
