// Package ey implements a demand-bound-function schedulability test for
// dual-criticality sporadic task systems in the style of Ekberg & Yi,
// "Bounding and shaping the demand of mixed-criticality sporadic tasks"
// (ECRTS 2012): per-task virtual deadlines for HC tasks, a LO-mode EDF
// demand test on the shrunk deadlines, a HI-mode demand test with
// carry-over jobs (the Sawtooth curve in internal/analysis/dbf), and a
// greedy failure-guided shaping loop that trades LO-mode slack for HI-mode
// slack one task at a time.
//
// The demand bounds follow the published worst-case alignment; the shaping
// loop is a documented reconstruction (the original's tuning order is
// heuristic as well). Package ecdf builds a stronger search on top of the
// same machinery.
package ey

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/mcs"
)

// Options tunes the shaping loop.
type Options struct {
	// MaxIter bounds the number of deadline adjustments (default 256).
	MaxIter int
}

// DefaultOptions returns the defaults used by the experiments.
func DefaultOptions() Options { return Options{MaxIter: 256} }

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 256
	}
	return o.MaxIter
}

// Result reports the verdict and, when schedulable, the virtual-deadline
// assignment (task ID → LO-mode relative deadline for HC tasks).
type Result struct {
	Schedulable bool
	// VD maps HC task IDs to their assigned LO-mode virtual deadlines.
	// LC tasks keep their real deadlines and do not appear.
	VD map[int]mcs.Ticks
	// Iterations counts shaping steps performed (diagnostics).
	Iterations int
}

// Assignment is a virtual-deadline assignment for the HC tasks of a set.
type Assignment map[int]mcs.Ticks

// clone copies the assignment.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// InitialAssignment returns the loosest assignment d_i = D_i.
func InitialAssignment(ts mcs.TaskSet) Assignment {
	a := make(Assignment)
	for _, t := range ts {
		if t.IsHC() {
			a[t.ID] = t.Deadline
		}
	}
	return a
}

// ScaledAssignment returns d_i = C_i^L + λ·(D_i − C_i^L) rounded down,
// clamped to [C_i^L, D_i]. λ=1 is the loosest (d=D), λ=0 the tightest
// (d=C^L).
func ScaledAssignment(ts mcs.TaskSet, lambda float64) Assignment {
	a := make(Assignment)
	for _, t := range ts {
		if !t.IsHC() {
			continue
		}
		span := float64(t.Deadline - t.CLo())
		d := t.CLo() + mcs.Ticks(lambda*span)
		if d < t.CLo() {
			d = t.CLo()
		}
		if d > t.Deadline {
			d = t.Deadline
		}
		a[t.ID] = d
	}
	return a
}

// LOCurves builds the LO-mode demand curves: every task contributes a step
// of size C^L at its LO-mode deadline (virtual for HC, real for LC).
func LOCurves(ts mcs.TaskSet, a Assignment) []dbf.Step {
	steps := make([]dbf.Step, 0, len(ts))
	for _, t := range ts {
		d := t.Deadline
		if t.IsHC() {
			d = a[t.ID]
		}
		steps = append(steps, dbf.Step{C: t.CLo(), D: d, T: t.Period})
	}
	return steps
}

// HICurves builds the HI-mode demand curves for the HC tasks.
func HICurves(ts mcs.TaskSet, a Assignment) []dbf.Sawtooth {
	var saws []dbf.Sawtooth
	for _, t := range ts {
		if !t.IsHC() {
			continue
		}
		saws = append(saws, dbf.Sawtooth{
			CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: a[t.ID], T: t.Period,
		})
	}
	return saws
}

// LOFeasible runs the LO-mode QPA test under the assignment.
func LOFeasible(ts mcs.TaskSet, a Assignment) bool {
	steps := LOCurves(ts, a)
	L, ok := dbf.HorizonLO(steps)
	if !ok {
		return false
	}
	sum := make(dbf.Sum, len(steps))
	for i := range steps {
		sum[i] = steps[i]
	}
	return dbf.QPA(sum, L)
}

// HIFeasible runs the HI-mode QPA test and returns a violation witness
// when it fails.
func HIFeasible(ts mcs.TaskSet, a Assignment) (witness mcs.Ticks, ok bool) {
	saws := HICurves(ts, a)
	if len(saws) == 0 {
		return -1, true
	}
	L, ok := dbf.HorizonHI(saws)
	if !ok {
		return 0, false
	}
	sum := make(dbf.Sum, len(saws))
	for i := range saws {
		sum[i] = saws[i]
	}
	return dbf.QPAWitness(sum, L)
}

// Analyze runs the EY test: the loosest assignment must pass the LO test
// (otherwise even plain EDF on LO parameters fails), then HI-mode failures
// are repaired by shrinking one virtual deadline at a time, checking that
// the LO test still holds after each move.
func Analyze(ts mcs.TaskSet, opts Options) Result {
	a := InitialAssignment(ts)
	if !LOFeasible(ts, a) {
		return Result{}
	}
	r, ok := shape(ts, a, opts.maxIter())
	if !ok {
		return Result{Iterations: r.Iterations}
	}
	return r
}

// Schedulable is the boolean wrapper with default options.
func Schedulable(ts mcs.TaskSet) bool { return Analyze(ts, DefaultOptions()).Schedulable }

// ShapeFrom runs the failure-guided shaping loop from an arbitrary
// LO-feasible assignment. It is the entry point package ecdf uses for its
// scale-factor restarts. The input assignment is not modified.
func ShapeFrom(ts mcs.TaskSet, a Assignment, opts Options) (Assignment, bool) {
	r, ok := shape(ts, a.clone(), opts.maxIter())
	if !ok {
		return nil, false
	}
	return r.VD, true
}

// shape runs the failure-guided tuning loop from a LO-feasible assignment.
// It returns the final result and whether it converged.
func shape(ts mcs.TaskSet, a Assignment, maxIter int) (Result, bool) {
	frozen := make(map[int]bool)
	iters := 0
	for ; iters < maxIter; iters++ {
		w, ok := HIFeasible(ts, a)
		if ok {
			return Result{Schedulable: true, VD: a, Iterations: iters}, true
		}
		if !tuneStep(ts, a, frozen, w) {
			return Result{Iterations: iters}, false
		}
	}
	return Result{Iterations: iters}, false
}

// tuneStep shrinks the virtual deadline of the task that yields the largest
// demand reduction at the HI-mode violation witness w, while keeping the LO
// test passing. Returns false when no move is possible.
func tuneStep(ts mcs.TaskSet, a Assignment, frozen map[int]bool, w mcs.Ticks) bool {
	// Demand the HI test must shed at w.
	saws := HICurves(ts, a)
	sum := make(dbf.Sum, len(saws))
	for i := range saws {
		sum[i] = saws[i]
	}
	needed := sum.Value(w) - w
	if needed <= 0 {
		needed = 1
	}

	type candidate struct {
		task mcs.Task
		gain mcs.Ticks // demand reduction at w if shrunk fully to C^L
	}
	var best *candidate
	for _, t := range ts {
		if !t.IsHC() || frozen[t.ID] {
			continue
		}
		d := a[t.ID]
		if d <= t.CLo() {
			continue
		}
		cur := dbf.Sawtooth{CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: d, T: t.Period}.Value(w)
		min := dbf.Sawtooth{CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: t.CLo(), T: t.Period}.Value(w)
		gain := cur - min
		if gain <= 0 {
			continue
		}
		if best == nil || gain > best.gain {
			c := candidate{task: t, gain: gain}
			best = &c
		}
	}
	if best == nil {
		return false
	}

	t := best.task
	hi, lo := a[t.ID], t.CLo()
	// Find the largest shrink ≤ needed that keeps the LO test passing,
	// preferring the full shrink; binary search over the LO-feasible
	// boundary (LO demand is monotone in −d, so feasibility is monotone
	// in d: larger d is easier for LO).
	target := hi - needed
	if target < lo {
		target = lo
	}
	try := func(d mcs.Ticks) bool {
		old := a[t.ID]
		a[t.ID] = d
		ok := LOFeasible(ts, a)
		if !ok {
			a[t.ID] = old
		}
		return ok
	}
	if try(target) {
		return true
	}
	// Binary search in (target, hi): smallest d ≥ target that stays
	// LO-feasible; any strict decrease is progress.
	loBound, hiBound := target+1, hi-1
	moved := false
	for loBound <= hiBound {
		mid := (loBound + hiBound) / 2
		if try(mid) {
			moved = true
			hiBound = mid - 1 // try to shrink further
		} else {
			loBound = mid + 1
		}
	}
	if !moved {
		frozen[t.ID] = true
		// Another candidate may still help on the next iteration; report
		// progress only if any unfrozen candidate remains.
		for _, u := range ts {
			if u.IsHC() && !frozen[u.ID] && a[u.ID] > u.CLo() {
				return true
			}
		}
		return false
	}
	return true
}

// Test is the partitioning-test adapter for EY.
type Test struct {
	Opts Options
}

// Name implements the test interface.
func (Test) Name() string { return "EY" }

// Schedulable implements the test interface.
func (t Test) Schedulable(ts mcs.TaskSet) bool {
	o := t.Opts
	if o.MaxIter == 0 {
		o = DefaultOptions()
	}
	return Analyze(ts, o).Schedulable
}
