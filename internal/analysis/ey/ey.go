// Package ey implements a demand-bound-function schedulability test for
// dual-criticality sporadic task systems in the style of Ekberg & Yi,
// "Bounding and shaping the demand of mixed-criticality sporadic tasks"
// (ECRTS 2012): per-task virtual deadlines for HC tasks, a LO-mode EDF
// demand test on the shrunk deadlines, a HI-mode demand test with
// carry-over jobs (the Sawtooth curve in internal/analysis/dbf), and a
// greedy failure-guided shaping loop that trades LO-mode slack for HI-mode
// slack one task at a time.
//
// The demand bounds follow the published worst-case alignment; the shaping
// loop is a documented reconstruction (the original's tuning order is
// heuristic as well). Package ecdf builds a stronger search on top of the
// same machinery.
//
// All curve construction funnels through an Engine, which keeps the step
// and sawtooth slices in reusable scratch buffers: the stateless API
// allocates a fresh Engine per call (behavior unchanged), while the
// admission hot path holds one Engine per core via the Analyzer and reuses
// its buffers across probes.
package ey

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/mcs"
)

// Options tunes the shaping loop.
type Options struct {
	// MaxIter bounds the number of deadline adjustments (default 256).
	MaxIter int
}

// DefaultOptions returns the defaults used by the experiments.
func DefaultOptions() Options { return Options{MaxIter: 256} }

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 256
	}
	return o.MaxIter
}

// EffectiveMaxIter exposes the default coercion (MaxIter ≤ 0 → 256) for
// callers outside the package that replay the shaping loop, so their
// iteration budget matches the stateless one exactly.
func (o Options) EffectiveMaxIter() int { return o.maxIter() }

// Result reports the verdict and, when schedulable, the virtual-deadline
// assignment (task ID → LO-mode relative deadline for HC tasks).
type Result struct {
	Schedulable bool
	// VD maps HC task IDs to their assigned LO-mode virtual deadlines.
	// LC tasks keep their real deadlines and do not appear.
	VD map[int]mcs.Ticks
	// Iterations counts shaping steps performed (diagnostics).
	Iterations int
}

// Assignment is a virtual-deadline assignment for the HC tasks of a set.
type Assignment map[int]mcs.Ticks

// clone copies the assignment.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// InitialAssignment returns the loosest assignment d_i = D_i.
func InitialAssignment(ts mcs.TaskSet) Assignment {
	a := make(Assignment)
	InitialInto(ts, a)
	return a
}

// InitialInto fills a (assumed empty) with the loosest assignment. It is
// the map-reusing form the per-core analyzers (here and in package ecdf)
// build on.
func InitialInto(ts mcs.TaskSet, a Assignment) {
	for _, t := range ts {
		if t.IsHC() {
			a[t.ID] = t.Deadline
		}
	}
}

// ScaledAssignment returns d_i = C_i^L + λ·(D_i − C_i^L) rounded down,
// clamped to [C_i^L, D_i]. λ=1 is the loosest (d=D), λ=0 the tightest
// (d=C^L).
func ScaledAssignment(ts mcs.TaskSet, lambda float64) Assignment {
	a := make(Assignment)
	ScaledInto(ts, lambda, a)
	return a
}

// ScaledInto fills a (assumed empty) with the λ-scaled assignment; the
// map-reusing form of ScaledAssignment.
func ScaledInto(ts mcs.TaskSet, lambda float64, a Assignment) {
	for _, t := range ts {
		if !t.IsHC() {
			continue
		}
		span := float64(t.Deadline - t.CLo())
		d := t.CLo() + mcs.Ticks(lambda*span)
		if d < t.CLo() {
			d = t.CLo()
		}
		if d > t.Deadline {
			d = t.Deadline
		}
		a[t.ID] = d
	}
}

// Engine holds the reusable curve scratch the demand tests are built on.
// The zero value is ready to use; it is not safe for concurrent use.
type Engine struct {
	steps []dbf.Step
	saws  []dbf.Sawtooth
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// loCurves rebuilds the LO-mode demand curves into the engine's step
// buffer: every task contributes a step of size C^L at its LO-mode deadline
// (virtual for HC, real for LC).
func (e *Engine) loCurves(ts mcs.TaskSet, a Assignment) []dbf.Step {
	steps := e.steps[:0]
	for _, t := range ts {
		d := t.Deadline
		if t.IsHC() {
			d = a[t.ID]
		}
		steps = append(steps, dbf.Step{C: t.CLo(), D: d, T: t.Period})
	}
	e.steps = steps
	return steps
}

// hiCurves rebuilds the HI-mode demand curves of the HC tasks into the
// engine's sawtooth buffer.
func (e *Engine) hiCurves(ts mcs.TaskSet, a Assignment) []dbf.Sawtooth {
	saws := e.saws[:0]
	for _, t := range ts {
		if !t.IsHC() {
			continue
		}
		saws = append(saws, dbf.Sawtooth{
			CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: a[t.ID], T: t.Period,
		})
	}
	e.saws = saws
	return saws
}

// LOFeasible runs the LO-mode QPA test under the assignment.
func (e *Engine) LOFeasible(ts mcs.TaskSet, a Assignment) bool {
	steps := e.loCurves(ts, a)
	L, ok := dbf.HorizonLO(steps)
	if !ok {
		return false
	}
	return dbf.QPA(dbf.StepSum(steps), L)
}

// HIFeasible runs the HI-mode QPA test and returns a violation witness
// when it fails.
func (e *Engine) HIFeasible(ts mcs.TaskSet, a Assignment) (witness mcs.Ticks, ok bool) {
	saws := e.hiCurves(ts, a)
	if len(saws) == 0 {
		return -1, true
	}
	L, ok := dbf.HorizonHI(saws)
	if !ok {
		return 0, false
	}
	return dbf.QPAWitness(dbf.SawSum(saws), L)
}

// LOCurves builds the LO-mode demand curves (step per task). It allocates a
// fresh slice; the hot paths use Engine.loCurves instead.
func LOCurves(ts mcs.TaskSet, a Assignment) []dbf.Step {
	return append([]dbf.Step(nil), (&Engine{}).loCurves(ts, a)...)
}

// HICurves builds the HI-mode demand curves for the HC tasks.
func HICurves(ts mcs.TaskSet, a Assignment) []dbf.Sawtooth {
	saws := (&Engine{}).hiCurves(ts, a)
	if len(saws) == 0 {
		return nil
	}
	return append([]dbf.Sawtooth(nil), saws...)
}

// LOFeasible runs the LO-mode QPA test under the assignment.
func LOFeasible(ts mcs.TaskSet, a Assignment) bool {
	return (&Engine{}).LOFeasible(ts, a)
}

// HIFeasible runs the HI-mode QPA test and returns a violation witness
// when it fails.
func HIFeasible(ts mcs.TaskSet, a Assignment) (witness mcs.Ticks, ok bool) {
	return (&Engine{}).HIFeasible(ts, a)
}

// Analyze runs the EY test: the loosest assignment must pass the LO test
// (otherwise even plain EDF on LO parameters fails), then HI-mode failures
// are repaired by shrinking one virtual deadline at a time, checking that
// the LO test still holds after each move.
func Analyze(ts mcs.TaskSet, opts Options) Result {
	e := NewEngine()
	a := InitialAssignment(ts)
	if !e.LOFeasible(ts, a) {
		return Result{}
	}
	r, ok := e.shape(ts, a, make(map[int]bool), opts.maxIter())
	if !ok {
		return Result{Iterations: r.Iterations}
	}
	return r
}

// Schedulable is the boolean wrapper with default options.
func Schedulable(ts mcs.TaskSet) bool { return Analyze(ts, DefaultOptions()).Schedulable }

// ShapeFrom runs the failure-guided shaping loop from an arbitrary
// LO-feasible assignment. It is the entry point package ecdf uses for its
// scale-factor restarts. The input assignment is not modified.
func ShapeFrom(ts mcs.TaskSet, a Assignment, opts Options) (Assignment, bool) {
	r, ok := (&Engine{}).shape(ts, a.clone(), make(map[int]bool), opts.maxIter())
	if !ok {
		return nil, false
	}
	return r.VD, true
}

// ShapeInPlace is ShapeFrom for callers that own a as scratch: the
// assignment is tuned in place, frozen (which must start empty) is used as
// the loop's bookkeeping, and only the verdict is reported. Package ecdf's
// analyzer restarts use it to avoid per-restart clones.
func (e *Engine) ShapeInPlace(ts mcs.TaskSet, a Assignment, frozen map[int]bool, opts Options) bool {
	_, ok := e.shape(ts, a, frozen, opts.maxIter())
	return ok
}

// shape runs the failure-guided tuning loop from a LO-feasible assignment,
// mutating a and frozen (both owned by the caller; frozen must start
// empty). It returns the final result and whether it converged.
func (e *Engine) shape(ts mcs.TaskSet, a Assignment, frozen map[int]bool, maxIter int) (Result, bool) {
	iters := 0
	for ; iters < maxIter; iters++ {
		w, ok := e.HIFeasible(ts, a)
		if ok {
			return Result{Schedulable: true, VD: a, Iterations: iters}, true
		}
		if !e.tuneStep(ts, a, frozen, w) {
			return Result{Iterations: iters}, false
		}
	}
	return Result{Iterations: iters}, false
}

// tuneStep shrinks the virtual deadline of the task that yields the largest
// demand reduction at the HI-mode violation witness w, while keeping the LO
// test passing. Returns false when no move is possible.
func (e *Engine) tuneStep(ts mcs.TaskSet, a Assignment, frozen map[int]bool, w mcs.Ticks) bool {
	// Demand the HI test must shed at w.
	saws := e.hiCurves(ts, a)
	needed := dbf.SawSum(saws).Value(w) - w
	if needed <= 0 {
		needed = 1
	}

	type candidate struct {
		task mcs.Task
		gain mcs.Ticks // demand reduction at w if shrunk fully to C^L
	}
	var best *candidate
	var bestStore candidate
	for _, t := range ts {
		if !t.IsHC() || frozen[t.ID] {
			continue
		}
		d := a[t.ID]
		if d <= t.CLo() {
			continue
		}
		cur := dbf.Sawtooth{CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: d, T: t.Period}.Value(w)
		min := dbf.Sawtooth{CL: t.CLo(), CH: t.CHi(), D: t.Deadline, VD: t.CLo(), T: t.Period}.Value(w)
		gain := cur - min
		if gain <= 0 {
			continue
		}
		if best == nil || gain > best.gain {
			bestStore = candidate{task: t, gain: gain}
			best = &bestStore
		}
	}
	if best == nil {
		return false
	}

	t := best.task
	hi, lo := a[t.ID], t.CLo()
	// Find the largest shrink ≤ needed that keeps the LO test passing,
	// preferring the full shrink; binary search over the LO-feasible
	// boundary (LO demand is monotone in −d, so feasibility is monotone
	// in d: larger d is easier for LO).
	target := hi - needed
	if target < lo {
		target = lo
	}
	try := func(d mcs.Ticks) bool {
		old := a[t.ID]
		a[t.ID] = d
		ok := e.LOFeasible(ts, a)
		if !ok {
			a[t.ID] = old
		}
		return ok
	}
	if try(target) {
		return true
	}
	// Binary search in (target, hi): smallest d ≥ target that stays
	// LO-feasible; any strict decrease is progress.
	loBound, hiBound := target+1, hi-1
	moved := false
	for loBound <= hiBound {
		mid := (loBound + hiBound) / 2
		if try(mid) {
			moved = true
			hiBound = mid - 1 // try to shrink further
		} else {
			loBound = mid + 1
		}
	}
	if !moved {
		frozen[t.ID] = true
		// Another candidate may still help on the next iteration; report
		// progress only if any unfrozen candidate remains.
		for _, u := range ts {
			if u.IsHC() && !frozen[u.ID] && a[u.ID] > u.CLo() {
				return true
			}
		}
		return false
	}
	return true
}

// Test is the partitioning-test adapter for EY.
type Test struct {
	Opts Options
}

// Name implements the test interface.
func (Test) Name() string { return "EY" }

// Schedulable implements the test interface.
func (t Test) Schedulable(ts mcs.TaskSet) bool {
	o := t.Opts
	if o.MaxIter == 0 {
		o = DefaultOptions()
	}
	return Analyze(ts, o).Schedulable
}
