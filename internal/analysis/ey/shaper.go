package ey

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/mcs"
)

// Shaper is the array-backed twin of Engine + Assignment that the per-core
// analyzers (here and in package ecdf) run on. Where the stateless path
// keeps the virtual-deadline assignment in an ID-keyed map and rebuilds
// the step/sawtooth curves from it before every feasibility check, the
// Shaper stores the curves themselves, indexed by task position, and
// mutates them in place when a deadline moves — a feasibility check is
// then a horizon fold plus a QPA walk, with no per-task map traffic.
//
// Verdicts stay bit-identical to the Engine because the curves it would
// rebuild are exactly the ones the Shaper maintains: loCurves emits one
// step per task in slice order with D = the task's current LO deadline,
// hiCurves one sawtooth per HC task in slice order with VD = the current
// virtual deadline — and Shape/tuneStep below visit candidates in the
// same order, compare gains with the same strict inequality, and probe
// the same LO-feasibility boundary. (The equivalence leans on task IDs
// being unique within a set, which every producer in this repo
// guarantees; an ID-keyed map would alias duplicate IDs where positional
// arrays would not.)
//
// The zero value is ready to use; a Shaper is not safe for concurrent
// use.
type Shaper struct {
	steps  []dbf.Step     // per task, D = current LO-mode deadline
	saws   []dbf.Sawtooth // per HC task, ts order, VD = current virtual deadline
	sawOf  []int          // task index → index into saws, -1 for LC
	taskOf []int          // saw index → task index
	frozen []bool         // per saw, the shaping loop's bookkeeping

	// Cached per-curve horizon fold terms. The QPA horizon is a fold of
	// four components per curve — utilization, affine offset, transient
	// length, hyperperiod — of which only the offset and transient depend
	// on the curve's current deadline. offLO/offHI hold each curve's
	// offset term, recomputed by setHC only for the curve whose deadline
	// moved; a feasibility call then re-sums them in curve order (plain
	// float adds, no divisions), which is bit-identical to the full
	// HorizonLO/HorizonHI fold because the terms are computed by the same
	// expressions and summed in the same order.
	offLO []float64 // per step: max(0, (T−D)·C/T), as LOAccum.Add folds it
	offHI []float64 // per saw: CH·(1 − (D−VD)/T), as HIAccum.Add folds it

	// Horizon folds of the loosest assignment (every VD = D), extended
	// O(1) per appended task. Their utilization and hyperperiod components
	// are deadline-independent, so every feasibility call below reuses
	// them as-is — only the offset/transient components are re-summed.
	looseLO dbf.LOAccum
	looseHI dbf.HIAccum
}

// loOffTerm is the offset term LOAccum.Add would fold for st — the same
// expression, so cached copies stay bit-identical (folding an explicit 0
// for non-positive terms matches skipping the add: the sum is unchanged
// either way).
func loOffTerm(st dbf.Step) float64 {
	ui := float64(st.C) / float64(st.T)
	if d := float64(st.T-st.D) * ui; d > 0 {
		return d
	}
	return 0
}

// hiOffTerm is the offset term HIAccum.Add would fold for sw.
func hiOffTerm(sw dbf.Sawtooth) float64 {
	return float64(sw.CH) * (1 - float64(sw.D-sw.VD)/float64(sw.T))
}

// Reset rebuilds the curves for ts under the loosest assignment
// (d_i = D_i), clearing all shaping state. The task slice is only read
// during the call.
func (s *Shaper) Reset(ts mcs.TaskSet) {
	s.steps = s.steps[:0]
	s.saws = s.saws[:0]
	s.sawOf = s.sawOf[:0]
	s.taskOf = s.taskOf[:0]
	s.frozen = s.frozen[:0]
	s.offLO = s.offLO[:0]
	s.offHI = s.offHI[:0]
	s.looseLO = dbf.LOAccum{}
	s.looseHI = dbf.HIAccum{}
	for _, t := range ts {
		s.Extend(t)
	}
}

// ExtendUndo captures the state Extend is about to change, so a rejected
// probe can drop the appended task again (the accumulators cannot be
// un-folded, so they are saved by value).
type ExtendUndo struct {
	tasks, saws int
	looseLO     dbf.LOAccum
	looseHI     dbf.HIAccum
}

// Extend appends one task's loosest-assignment curves and folds its terms
// into the loose horizon accumulators. The curves must currently describe
// a loosest assignment prefix (Reset, RestoreLoosest, or a previous
// Extend).
func (s *Shaper) Extend(x mcs.Task) ExtendUndo {
	u := ExtendUndo{tasks: len(s.steps), saws: len(s.saws), looseLO: s.looseLO, looseHI: s.looseHI}
	st := dbf.Step{C: x.CLo(), D: x.Deadline, T: x.Period}
	s.steps = append(s.steps, st)
	s.offLO = append(s.offLO, loOffTerm(st))
	s.looseLO.Add(st)
	if x.IsHC() {
		s.sawOf = append(s.sawOf, len(s.saws))
		sw := dbf.Sawtooth{CL: x.CLo(), CH: x.CHi(), D: x.Deadline, VD: x.Deadline, T: x.Period}
		s.saws = append(s.saws, sw)
		s.taskOf = append(s.taskOf, u.tasks)
		s.frozen = append(s.frozen, false)
		s.offHI = append(s.offHI, hiOffTerm(sw))
		s.looseHI.Add(sw)
	} else {
		s.sawOf = append(s.sawOf, -1)
	}
	return u
}

// Truncate undoes an Extend: the appended task's curves are dropped and
// the loose accumulators restored. Deadline mutations on the surviving
// prefix are NOT undone; callers restore those with RestoreLoosest.
func (s *Shaper) Truncate(u ExtendUndo) {
	s.steps = s.steps[:u.tasks]
	s.sawOf = s.sawOf[:u.tasks]
	s.offLO = s.offLO[:u.tasks]
	s.saws = s.saws[:u.saws]
	s.taskOf = s.taskOf[:u.saws]
	s.frozen = s.frozen[:u.saws]
	s.offHI = s.offHI[:u.saws]
	s.looseLO, s.looseHI = u.looseLO, u.looseHI
}

// RestoreLoosest resets every virtual deadline back to the real deadline,
// returning the curves to the loosest assignment after a shaping run.
func (s *Shaper) RestoreLoosest() {
	for j := range s.saws {
		s.setHC(j, s.saws[j].D)
	}
}

// Scale overwrites every virtual deadline with the λ-scaled assignment
// d = C^L + λ·(D − C^L), clamped to [C^L, D] — the array form of
// ScaledInto, used by package ecdf's restarts.
func (s *Shaper) Scale(lambda float64) {
	for j := range s.saws {
		cl, dl := s.saws[j].CL, s.saws[j].D
		span := float64(dl - cl)
		d := cl + mcs.Ticks(lambda*span)
		if d < cl {
			d = cl
		}
		if d > dl {
			d = dl
		}
		s.setHC(j, d)
	}
}

// setHC moves HC task j's virtual deadline, keeping its LO step, HI
// sawtooth and cached fold terms in sync.
func (s *Shaper) setHC(j int, d mcs.Ticks) {
	s.saws[j].VD = d
	i := s.taskOf[j]
	s.steps[i].D = d
	s.offLO[i] = loOffTerm(s.steps[i])
	s.offHI[j] = hiOffTerm(s.saws[j])
}

// NumTasks returns the number of tasks under analysis.
func (s *Shaper) NumTasks() int { return len(s.steps) }

// NumHC returns the number of HC tasks (= sawtooth curves).
func (s *Shaper) NumHC() int { return len(s.saws) }

// HCDeadline returns the real deadline of the j-th HC task (saw order).
func (s *Shaper) HCDeadline(j int) mcs.Ticks { return s.saws[j].D }

// HCVD returns the current virtual deadline of the j-th HC task.
func (s *Shaper) HCVD(j int) mcs.Ticks { return s.saws[j].VD }

// SetHCVD moves the j-th HC task's virtual deadline (package ecdf's
// relaxation uses it).
func (s *Shaper) SetHCVD(j int, d mcs.Ticks) { s.setHC(j, d) }

// LOFeasible runs the LO-mode QPA test under the current deadlines. The
// horizon matches dbf.HorizonLO over the same curves bit for bit: the
// utilization and hyperperiod components are deadline-independent and
// come from the loose fold, the offset terms are the cached per-step
// values re-summed in step order.
func (s *Shaper) LOFeasible() bool {
	if len(s.steps) == 0 {
		return true
	}
	var off float64
	var maxD mcs.Ticks
	for i := range s.steps {
		off += s.offLO[i]
		if d := s.steps[i].D; d > maxD {
			maxD = d
		}
	}
	L, ok := dbf.Horizon(s.looseLO.U, off, maxD, s.looseLO.Hyper, s.looseLO.HyperOK)
	if !ok {
		return false
	}
	return dbf.QPA(dbf.StepSum(s.steps), L)
}

// HIFeasible runs the HI-mode QPA test under the current virtual
// deadlines, returning a violation witness when it fails. The horizon is
// assembled like LOFeasible's, matching dbf.HorizonHI bit for bit.
func (s *Shaper) HIFeasible() (witness mcs.Ticks, ok bool) {
	if len(s.saws) == 0 {
		return -1, true
	}
	var off float64
	var maxOff mcs.Ticks
	for j := range s.saws {
		off += s.offHI[j]
		if o := s.saws[j].D - s.saws[j].VD; o > maxOff {
			maxOff = o
		}
	}
	L, ok := dbf.Horizon(s.looseHI.U, off, maxOff, s.looseHI.Hyper, s.looseHI.HyperOK)
	if !ok {
		return 0, false
	}
	return dbf.QPAWitness(dbf.SawSum(s.saws), L)
}

// Shape runs the failure-guided tuning loop from the current assignment —
// the array twin of Engine.shape, starting with a fresh frozen set.
func (s *Shaper) Shape(maxIter int) bool {
	for j := range s.frozen {
		s.frozen[j] = false
	}
	for iters := 0; iters < maxIter; iters++ {
		w, ok := s.HIFeasible()
		if ok {
			return true
		}
		if !s.tuneStep(w) {
			return false
		}
	}
	return false
}

// ShapeResume is Shape for a caller that already ran iteration zero's
// HI-mode check (at the loosest assignment, via HIFeasible) and holds
// its violation witness: the trajectory continues with tuneStep on that
// witness, so the overall run is step-for-step the same loop.
func (s *Shaper) ShapeResume(w mcs.Ticks, maxIter int) bool {
	for j := range s.frozen {
		s.frozen[j] = false
	}
	if maxIter < 1 {
		return false
	}
	if !s.tuneStep(w) {
		return false
	}
	for iters := 1; iters < maxIter; iters++ {
		w, ok := s.HIFeasible()
		if ok {
			return true
		}
		if !s.tuneStep(w) {
			return false
		}
	}
	return false
}

// tuneStep is Engine.tuneStep on the arrays: shrink the virtual deadline
// of the unfrozen HC task with the largest demand reduction at the
// witness w, keeping the LO test passing. Candidate order, gain
// arithmetic, the strict best comparison, the clamped target and the
// binary search all mirror the map version exactly.
func (s *Shaper) tuneStep(w mcs.Ticks) bool {
	needed := dbf.SawSum(s.saws).Value(w) - w
	if needed <= 0 {
		needed = 1
	}

	best := -1
	var bestGain mcs.Ticks
	for j := range s.saws {
		if s.frozen[j] {
			continue
		}
		sw := s.saws[j]
		if sw.VD <= sw.CL {
			continue
		}
		cur := sw.Value(w)
		min := dbf.Sawtooth{CL: sw.CL, CH: sw.CH, D: sw.D, VD: sw.CL, T: sw.T}.Value(w)
		gain := cur - min
		if gain <= 0 {
			continue
		}
		if best < 0 || gain > bestGain {
			best, bestGain = j, gain
		}
	}
	if best < 0 {
		return false
	}

	hi, lo := s.saws[best].VD, s.saws[best].CL
	target := hi - needed
	if target < lo {
		target = lo
	}
	try := func(d mcs.Ticks) bool {
		old := s.saws[best].VD
		s.setHC(best, d)
		if s.LOFeasible() {
			return true
		}
		s.setHC(best, old)
		return false
	}
	if try(target) {
		return true
	}
	loBound, hiBound := target+1, hi-1
	moved := false
	for loBound <= hiBound {
		mid := (loBound + hiBound) / 2
		if try(mid) {
			moved = true
			hiBound = mid - 1 // try to shrink further
		} else {
			loBound = mid + 1
		}
	}
	if !moved {
		s.frozen[best] = true
		// Another candidate may still help on the next iteration; report
		// progress only if any unfrozen candidate remains.
		for j := range s.saws {
			if !s.frozen[j] && s.saws[j].VD > s.saws[j].CL {
				return true
			}
		}
		return false
	}
	return true
}
