package ey

import (
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core Ekberg–Yi engine: a Shaper holding
// the demand curves in positional arrays, two-sided filters in front of
// the exact analysis, and a Memo that makes prefix-extension probes
// incremental.
//
// The filters preserve bit-identical verdicts:
//
//   - necessary rejects recompute the very utilization sums
//     dbf.HorizonLO/HorizonHI reject on (same values, same accumulation
//     order, same 1e-9 boundary), so whenever the filter fires the exact
//     path is guaranteed to fail: a LO utilization above 1 fails the
//     initial LO test outright, and a HI utilization above 1 makes every
//     HIFeasible call fail regardless of the virtual-deadline assignment
//     (shrinking deadlines never lowers the long-run slope), so the shaping
//     loop can only run out of moves;
//   - the sufficient accept fires only for sets without HC tasks whose
//     LO density Σ C^L/D stays below 1 with a float-safety margin: the
//     HI test is then vacuously true and the density bound implies the
//     exact QPA — which is exact, not approximate — returns true.
//
// The warm path rests on the same left-fold identities the EDF-VD and EDF
// analyzers use: every input of the test — the filter sums, the loosest
// step/sawtooth curves, and their QPA horizon folds — is a left fold over
// the task slice, so when a probe prefix-extends the last accepted set
// the analyzer folds in only the newcomer's terms and re-decides from the
// cached curves. The shaping trajectory itself is NOT reused across
// probes (the greedy is a heuristic, so its verdict is the trajectory's
// outcome — only running the identical trajectory is sound); what the
// memo removes is the per-probe filter fold, curve construction and
// horizon folds. Removals refold over the order-preservingly compacted
// set, reproducing the stateless folds bit-for-bit.
type Analyzer struct {
	opts Options
	ctr  kernel.Counters
	sh   Shaper
	memo Memo
	// curvesOK gates the Shaper-as-cache tier: it holds while sh's arrays
	// describe memo.Mem under the loosest assignment.
	curvesOK bool
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer {
	o := t.Opts
	if o.MaxIter == 0 {
		o = DefaultOptions()
	}
	return &Analyzer{opts: o}
}

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// QuickState is the fold state behind QuickVerdict, exported so the
// EY/ECDF memos can extend it one task at a time: every component is a
// left fold (or an order-independent AND/count) over the task slice, so
// Extend on a saved state reproduces the cold fold bit-for-bit.
type QuickState struct {
	ULO, UHI, DensLO float64
	HC               int
	DensOK           bool
}

// FoldQuick computes the filter state of ts from scratch.
func FoldQuick(ts mcs.TaskSet) QuickState {
	q := QuickState{DensOK: true}
	for _, t := range ts {
		q = q.Extend(t)
	}
	return q
}

// Extend folds one task's terms into the state.
func (q QuickState) Extend(t mcs.Task) QuickState {
	q.ULO += float64(t.CLo()) / float64(t.Period)
	q.DensLO += float64(t.CLo()) / float64(t.Deadline)
	if t.Deadline > t.Period || t.Deadline <= 0 {
		q.DensOK = false
	}
	if t.IsHC() {
		q.HC++
		q.UHI += float64(t.CHi()) / float64(t.Period)
	}
	return q
}

// Verdict classifies the folded state: negative rejects, positive
// accepts, 0 falls through to the exact analysis.
func (q QuickState) Verdict() int {
	const horizonEps = 1e-9 // dbf.horizon's boundary slack
	if q.ULO > 1+horizonEps || q.UHI > 1+horizonEps {
		return -1
	}
	if q.HC == 0 && q.DensOK && q.DensLO <= 1-1e-9 {
		return 1
	}
	return 0
}

// QuickVerdict classifies ts against the shared EY/ECDF fast-path filters:
// a negative return rejects, a positive one accepts, 0 falls through to the
// exact analysis. The same filters front both tests (package ecdf imports
// this) because ECDF's search can only succeed where some assignment passes
// the identical LO/HI QPA machinery.
func QuickVerdict(ts mcs.TaskSet) int { return FoldQuick(ts).Verdict() }

// Memo is the shared EY/ECDF per-core memo: the last accepted set and its
// filter-sum fold. Package ecdf embeds one in its analyzer too.
type Memo struct {
	Valid bool
	Mem   []mcs.Task // last accepted set, slice order
	Quick QuickState // FoldQuick over Mem, in Mem order
}

// Extends reports whether ts is a one-task extension of the memoized set.
func (m *Memo) Extends(ts mcs.TaskSet) bool {
	return m.Valid && kernel.PrefixExtends(ts, m.Mem)
}

// PromoteWarm appends the accepted newcomer; q must be the extended fold.
func (m *Memo) PromoteWarm(x mcs.Task, q QuickState) {
	m.Mem = append(m.Mem, x)
	m.Quick = q
	m.Valid = true
}

// PromoteCold records a full accepted set; q must be FoldQuick(ts).
func (m *Memo) PromoteCold(ts mcs.TaskSet, q QuickState) {
	m.Mem = append(m.Mem[:0], ts...)
	m.Quick = q
	m.Valid = true
}

// Forget removes a task by ID and refolds the filter sums over the
// compacted order (the stateless fold of the set the Assigner probes
// next). It reports whether anything was removed.
func (m *Memo) Forget(id int) bool {
	if !m.Valid {
		return false
	}
	j := -1
	for i := range m.Mem {
		if m.Mem[i].ID == id {
			j = i
			break
		}
	}
	if j < 0 {
		return false
	}
	m.Mem = append(m.Mem[:j], m.Mem[j+1:]...)
	m.Quick = FoldQuick(mcs.TaskSet(m.Mem))
	return true
}

// Invalidate drops the memo.
func (m *Memo) Invalidate() { m.Valid = false }

// Schedulable implements kernel.Analyzer; the verdict is bit-identical to
// Test.Schedulable.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	warm := a.memo.Extends(ts)
	var q QuickState
	if warm {
		q = a.memo.Quick.Extend(ts[len(ts)-1])
	} else {
		q = FoldQuick(ts)
	}
	switch v := q.Verdict(); {
	case v < 0:
		a.ctr.FastRejects++
		return false
	case v > 0:
		a.ctr.FastAccepts++
		a.promoteFiltered(ts, warm, q)
		return true
	}

	if warm && a.curvesOK {
		// Seeded exact run: the Shaper already holds memo.Mem's loosest
		// curves and horizon folds; append the newcomer and decide.
		x := ts[len(ts)-1]
		undo := a.sh.Extend(x)
		ok, shaped := a.runExact()
		a.ctr.WarmStarts++
		if shaped {
			a.ctr.ExactRuns++
		} else {
			a.ctr.IncrementalHits++
		}
		if ok {
			a.memo.PromoteWarm(x, q)
			a.sh.RestoreLoosest()
		} else {
			a.sh.Truncate(undo)
			a.sh.RestoreLoosest()
		}
		return ok
	}

	a.ctr.ExactRuns++
	a.sh.Reset(ts)
	ok, _ := a.runExact()
	if ok {
		a.memo.PromoteCold(ts, q)
		a.sh.RestoreLoosest()
		a.curvesOK = true
	} else {
		// The arrays describe the rejected ts, not memo.Mem.
		a.curvesOK = false
	}
	return ok
}

// runExact replays the stateless Analyze on the Shaper's current curves
// (which must be at the loosest assignment): initial LO test, iteration
// zero's HI test, then the shaping loop continuing from its witness.
// shaped reports whether the shaping loop ran (vs a zero-iteration
// decision straight off the cached loosest curves).
func (a *Analyzer) runExact() (ok, shaped bool) {
	if !a.sh.LOFeasible() {
		return false, false
	}
	w, hiOK := a.sh.HIFeasible()
	if hiOK {
		return true, false
	}
	return a.sh.ShapeResume(w, a.opts.maxIter()), true
}

// promoteFiltered records a filter-resolved accept, extending the cached
// curves when they are live so later exact probes stay seeded.
func (a *Analyzer) promoteFiltered(ts mcs.TaskSet, warm bool, q QuickState) {
	if warm {
		x := ts[len(ts)-1]
		if a.curvesOK {
			a.sh.Extend(x)
		}
		a.memo.PromoteWarm(x, q)
		return
	}
	a.curvesOK = false
	a.memo.PromoteCold(ts, q)
}

// Forget implements kernel.Analyzer: the removed task leaves the memo,
// the filter sums refold, and the cached curves are rebuilt for the
// compacted set — all folds match the stateless ones on the next probe,
// so the memo stays valid across releases.
func (a *Analyzer) Forget(id int) {
	if !a.memo.Forget(id) {
		return
	}
	if a.curvesOK {
		a.sh.Reset(mcs.TaskSet(a.memo.Mem))
	}
}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {
	a.memo.Invalidate()
	a.curvesOK = false
}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
