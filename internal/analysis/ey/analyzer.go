package ey

import (
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core Ekberg–Yi engine: one Engine's curve
// buffers plus reusable assignment maps, with two-sided filters in front of
// the exact demand analysis.
//
// The filters preserve bit-identical verdicts:
//
//   - necessary rejects recompute the very utilization sums
//     dbf.HorizonLO/HorizonHI reject on (same values, same accumulation
//     order, same 1e-9 boundary), so whenever the filter fires the exact
//     path is guaranteed to fail: a LO utilization above 1 fails the
//     initial LO test outright, and a HI utilization above 1 makes every
//     HIFeasible call fail regardless of the virtual-deadline assignment
//     (shrinking deadlines never lowers the long-run slope), so the shaping
//     loop can only run out of moves;
//   - the sufficient accept fires only for sets without HC tasks whose
//     LO density Σ C^L/D stays below 1 with a float-safety margin: the
//     HI test is then vacuously true and the density bound implies the
//     exact QPA — which is exact, not approximate — returns true.
type Analyzer struct {
	opts   Options
	ctr    kernel.Counters
	eng    Engine
	assign Assignment
	frozen map[int]bool
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer {
	o := t.Opts
	if o.MaxIter == 0 {
		o = DefaultOptions()
	}
	return &Analyzer{opts: o, assign: make(Assignment), frozen: make(map[int]bool)}
}

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// QuickVerdict classifies ts against the shared EY/ECDF fast-path filters:
// a negative return rejects, a positive one accepts, 0 falls through to the
// exact analysis. The same filters front both tests (package ecdf imports
// this) because ECDF's search can only succeed where some assignment passes
// the identical LO/HI QPA machinery.
func QuickVerdict(ts mcs.TaskSet) int {
	const horizonEps = 1e-9 // dbf.horizon's boundary slack
	var uLO, uHI, densLO float64
	hc := 0
	densOK := true
	for _, t := range ts {
		uLO += float64(t.CLo()) / float64(t.Period)
		densLO += float64(t.CLo()) / float64(t.Deadline)
		if t.Deadline > t.Period || t.Deadline <= 0 {
			densOK = false
		}
		if t.IsHC() {
			hc++
			uHI += float64(t.CHi()) / float64(t.Period)
		}
	}
	if uLO > 1+horizonEps || uHI > 1+horizonEps {
		return -1
	}
	if hc == 0 && densOK && densLO <= 1-1e-9 {
		return 1
	}
	return 0
}

// Schedulable implements kernel.Analyzer; the verdict is bit-identical to
// Test.Schedulable.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	switch v := QuickVerdict(ts); {
	case v < 0:
		a.ctr.FastRejects++
		return false
	case v > 0:
		a.ctr.FastAccepts++
		return true
	}
	a.ctr.ExactRuns++
	clear(a.assign)
	clear(a.frozen)
	InitialInto(ts, a.assign)
	if !a.eng.LOFeasible(ts, a.assign) {
		return false
	}
	r, ok := a.eng.shape(ts, a.assign, a.frozen, a.opts.maxIter())
	return ok && r.Schedulable
}

// Forget implements kernel.Analyzer; the demand analysis keeps no cross-call
// memo (assignments are rebuilt per run), so there is nothing to prune.
func (a *Analyzer) Forget(int) {}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
