package ey

import (
	"math/rand"
	"testing"

	"mcsched/internal/analysis/dbf"
	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

func TestSingleTaskAccepted(t *testing.T) {
	// One HC task always fits alone (C^H ≤ D is a model invariant).
	ts := mcs.TaskSet{mcs.NewHC(0, 1, 2, 4)}
	r := Analyze(ts, DefaultOptions())
	if !r.Schedulable {
		t.Fatalf("single HC task rejected: %+v", r)
	}
	if d := r.VD[0]; d < 1 || d > 4 {
		t.Errorf("virtual deadline %d outside [C^L, D]", d)
	}
}

func TestTightSingleTask(t *testing.T) {
	// C^H = D = T: utilization exactly 1; feasible alone.
	ts := mcs.TaskSet{mcs.NewHC(0, 1, 4, 4)}
	if !Schedulable(ts) {
		t.Error("utilization-1 single HC task rejected")
	}
}

func TestTightPairNeedsShaping(t *testing.T) {
	// Two C^L=C^H=2, T=D=4 tasks: plain EDF feasible (U=1), but the HI
	// carry-over analysis with d=D fails; shaping must shrink one deadline.
	ts := mcs.TaskSet{mcs.NewHC(0, 2, 2, 4), mcs.NewHC(1, 2, 2, 4)}
	r := Analyze(ts, DefaultOptions())
	if !r.Schedulable {
		t.Fatalf("tight degenerate pair rejected: %+v", r)
	}
}

func TestOverloadRejected(t *testing.T) {
	// HI-mode utilization 1.25 can never be schedulable.
	ts := mcs.TaskSet{mcs.NewHC(0, 2, 3, 4), mcs.NewHC(1, 1, 2, 4)}
	if Schedulable(ts) {
		t.Error("HI-overloaded set accepted")
	}
	// LO-mode overload: ΣC^L/T > 1.
	ts = mcs.TaskSet{mcs.NewHC(0, 3, 3, 4), mcs.NewLC(1, 2, 4)}
	if Schedulable(ts) {
		t.Error("LO-overloaded set accepted")
	}
}

func TestLCOnly(t *testing.T) {
	ts := mcs.TaskSet{mcs.NewLC(0, 1, 4), mcs.NewLC(1, 2, 4)}
	r := Analyze(ts, DefaultOptions())
	if !r.Schedulable {
		t.Error("feasible LC-only set rejected")
	}
	if len(r.VD) != 0 {
		t.Errorf("LC-only set got virtual deadlines: %v", r.VD)
	}
}

func TestEmpty(t *testing.T) {
	if !Schedulable(nil) {
		t.Error("empty set rejected")
	}
}

// Self-consistency: when the test accepts, the returned assignment must
// satisfy both the LO and HI QPA tests and every deadline must lie in
// [C^L, D].
func TestResultSelfConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	accepted := 0
	for i := 0; i < 300; i++ {
		ts := randomSet(rng, 1+rng.Intn(5))
		r := Analyze(ts, DefaultOptions())
		if !r.Schedulable {
			continue
		}
		accepted++
		a := Assignment(r.VD)
		for _, task := range ts {
			if !task.IsHC() {
				continue
			}
			d, ok := a[task.ID]
			if !ok {
				t.Fatalf("missing VD for HC task %d", task.ID)
			}
			if d < task.CLo() || d > task.Deadline {
				t.Fatalf("VD %d outside [%d,%d]", d, task.CLo(), task.Deadline)
			}
		}
		if !LOFeasible(ts, a) {
			t.Fatalf("accepted assignment fails LO test: %v / %v", ts, a)
		}
		if _, ok := HIFeasible(ts, a); !ok {
			t.Fatalf("accepted assignment fails HI test: %v / %v", ts, a)
		}
	}
	if accepted == 0 {
		t.Error("no random set accepted — generator too harsh for the test")
	}
}

// randomSet builds a small random dual-criticality set with moderate load.
func randomSet(rng *rand.Rand, n int) mcs.TaskSet {
	var ts mcs.TaskSet
	for i := 0; i < n; i++ {
		T := mcs.Ticks(5 + rng.Intn(50))
		if rng.Intn(2) == 0 {
			c := mcs.Ticks(1 + rng.Intn(int(T)/3+1))
			ts = append(ts, mcs.NewLC(i, c, T))
		} else {
			ch := mcs.Ticks(1 + rng.Intn(int(T)/2+1))
			cl := mcs.Ticks(1 + rng.Intn(int(ch)))
			d := ch + mcs.Ticks(rng.Intn(int(T-ch)+1))
			ts = append(ts, mcs.NewHCConstrained(i, cl, ch, T, d))
		}
	}
	return ts
}

// Necessary condition: acceptance requires ΣC^H/T ≤ 1 over HC tasks and
// ΣC^L/T ≤ 1 over all tasks.
func TestAcceptanceImpliesUtilizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		ts := randomSet(rng, 1+rng.Intn(6))
		if !Schedulable(ts) {
			continue
		}
		var uh, ul float64
		for _, task := range ts {
			ul += float64(task.CLo()) / float64(task.Period)
			if task.IsHC() {
				uh += float64(task.CHi()) / float64(task.Period)
			}
		}
		if uh > 1+1e-9 || ul > 1+1e-9 {
			t.Fatalf("accepted set with uh=%g ul=%g: %v", uh, ul, ts)
		}
	}
}

// EY must accept at least everything plain worst-case-reservation EDF
// accepts on implicit deadlines with generous slack (sanity lower bound on
// acceptance strength): if Σ C^H/T ≤ 0.5 the set is trivially schedulable
// and the test must agree.
func TestAcceptsLightLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := taskgen.DefaultConfig(1, 0.4, 0.2, 0.1) // UB = 0.4
	for i := 0; i < 100; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Schedulable(ts) {
			t.Fatalf("light-load set rejected: %v", ts)
		}
	}
}

// Constrained-deadline generated sets: the verdict must be self-consistent
// and the test must terminate quickly.
func TestGeneratedConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := taskgen.DefaultConfig(1, 0.6, 0.3, 0.3)
	cfg.Constrained = true
	accepted := 0
	for i := 0; i < 100; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := Analyze(ts, DefaultOptions())
		if r.Schedulable {
			accepted++
			if !LOFeasible(ts, r.VD) {
				t.Fatal("accepted but LO-infeasible")
			}
		}
	}
	t.Logf("accepted %d/100 at UB=0.6 constrained", accepted)
}

func TestScaledAssignment(t *testing.T) {
	ts := mcs.TaskSet{mcs.NewHC(0, 10, 20, 100), mcs.NewLC(1, 5, 50)}
	a := ScaledAssignment(ts, 0)
	if a[0] != 10 {
		t.Errorf("λ=0: d = %d, want C^L = 10", a[0])
	}
	a = ScaledAssignment(ts, 1)
	if a[0] != 100 {
		t.Errorf("λ=1: d = %d, want D = 100", a[0])
	}
	a = ScaledAssignment(ts, 0.5)
	if a[0] != 55 {
		t.Errorf("λ=0.5: d = %d, want 55", a[0])
	}
	if _, ok := a[1]; ok {
		t.Error("LC task got a virtual deadline")
	}
}

func TestShapeFromDoesNotMutate(t *testing.T) {
	ts := mcs.TaskSet{mcs.NewHC(0, 2, 2, 4), mcs.NewHC(1, 2, 2, 4)}
	a := InitialAssignment(ts)
	before := a.clone()
	ShapeFrom(ts, a, DefaultOptions())
	for id, d := range before {
		if a[id] != d {
			t.Fatalf("ShapeFrom mutated input assignment at task %d", id)
		}
	}
}

func TestCurvesMatchModel(t *testing.T) {
	ts := mcs.TaskSet{
		mcs.NewHCConstrained(0, 2, 5, 10, 10),
		mcs.NewLC(1, 3, 12),
	}
	a := Assignment{0: 6}
	lo := LOCurves(ts, a)
	if len(lo) != 2 {
		t.Fatalf("LO curves = %d, want 2", len(lo))
	}
	if lo[0] != (dbf.Step{C: 2, D: 6, T: 10}) {
		t.Errorf("HC LO step = %+v", lo[0])
	}
	if lo[1] != (dbf.Step{C: 3, D: 12, T: 12}) {
		t.Errorf("LC LO step = %+v", lo[1])
	}
	hi := HICurves(ts, a)
	if len(hi) != 1 {
		t.Fatalf("HI curves = %d, want 1", len(hi))
	}
	if hi[0] != (dbf.Sawtooth{CL: 2, CH: 5, D: 10, VD: 6, T: 10}) {
		t.Errorf("sawtooth = %+v", hi[0])
	}
}

func TestTestAdapter(t *testing.T) {
	var tst Test
	if tst.Name() != "EY" {
		t.Errorf("Name = %q", tst.Name())
	}
	if !tst.Schedulable(mcs.TaskSet{mcs.NewHC(0, 1, 2, 10)}) {
		t.Error("adapter rejected trivial set")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cfg := taskgen.DefaultConfig(1, 0.7, 0.35, 0.25)
	cfg.Constrained = true
	sets := make([]mcs.TaskSet, 32)
	for i := range sets {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = ts
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(sets[i%len(sets)], DefaultOptions())
	}
}
