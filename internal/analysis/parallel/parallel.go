// Package parallel is the batch-parallel analysis engine: a small
// worker-pool layer that fans independent schedulability probes out across
// goroutines while preserving the exact semantics of a serial scan.
//
// The package is deliberately generic — it knows nothing about tasks, cores
// or tests. Two primitives cover every use in the repository:
//
//   - Engine.First evaluates an ordered sequence of predicates ("does core k
//     accept this task?") and returns the first index that holds, exactly as
//     a serial loop would, but evaluating up to Workers candidates
//     concurrently in chunks. FirstWidth is the same scan with a
//     caller-chosen chunk width, so cheap predicates can amortize the
//     per-chunk fan-out over wider chunks. The partitioning strategies in
//     internal/core and the admission hot path in internal/admission route
//     their candidate-core scans through it, with an adaptive width
//     controller on the Assigner picking the chunking per test family.
//   - Map evaluates an index-addressed function over [0, n) with bounded
//     concurrency and returns the results in index order. The experiment
//     driver in internal/experiments uses it for task-set-level parallelism
//     of acceptance-ratio sweeps.
//
// Both primitives are deterministic for deterministic inputs: First returns
// the same index a serial scan would, and Map's result slice is ordered by
// index regardless of completion order. Speculative work (candidates probed
// beyond the first hit within a chunk) affects only wall-clock time, never
// results. Callers must supply functions that are safe for concurrent
// invocation; the schedulability tests in internal/analysis/... are
// stateless values and qualify.
//
// A panic inside a worker is captured and re-raised on the calling
// goroutine after the in-flight chunk drains, so parallel execution panics
// exactly where a serial loop would — in particular, an analysis panic in
// the mcschedd daemon stays a per-request failure handled by net/http's
// recover instead of killing the process from a bare goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// capturedPanic carries a worker panic back to the calling goroutine.
type capturedPanic struct{ value any }

// guard runs fn, converting a panic into a stored capturedPanic. first
// keeps only the earliest capture so the re-raised panic is deterministic
// under concurrency.
func guard(first *atomic.Pointer[capturedPanic], fn func()) {
	defer func() {
		if r := recover(); r != nil {
			first.CompareAndSwap(nil, &capturedPanic{value: r})
		}
	}()
	fn()
}

// rethrow re-raises a captured worker panic on the caller.
func rethrow(first *atomic.Pointer[capturedPanic]) {
	if p := first.Load(); p != nil {
		panic(fmt.Sprintf("parallel: worker panicked: %v", p.value))
	}
}

// Engine fans independent function evaluations across a fixed number of
// worker goroutines. The zero value is not useful; use New. An Engine is
// immutable after construction and safe for concurrent use by any number of
// callers — goroutines are spawned per call, so idle engines cost nothing.
type Engine struct {
	workers int
}

// New returns an engine with the given concurrency. workers <= 0 selects
// GOMAXPROCS; workers == 1 yields a serial engine whose methods run inline
// with no goroutines at all.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Serial returns the inline single-worker engine.
func Serial() *Engine { return &Engine{workers: 1} }

// Workers reports the engine's concurrency.
func (e *Engine) Workers() int { return e.workers }

// First returns the smallest i in [0, n) for which pred(i) is true, or -1
// when none holds — bit-identical to the serial scan
//
//	for i := 0; i < n; i++ { if pred(i) { return i } }
//
// but evaluating up to Workers predicates concurrently, in chunks of
// Workers indices. It is FirstWidth at the default chunk width.
func (e *Engine) First(n int, pred func(i int) bool) int {
	return e.FirstWidth(n, e.workers, pred)
}

// FirstWidth is First with an explicit chunk width: evaluation proceeds in
// chunks of width indices, each chunk fanned across min(Workers, width)
// goroutines in a strided assignment (goroutine j takes chunk indices j,
// j+g, j+2g, …), then the chunk's hits are scanned in order. The returned
// index is the serial answer for every width — width trades goroutine
// fan-out overhead against speculative evaluations past the winning index
// (at most width−1 of them, all inside the winning chunk; no index beyond
// the winning chunk is ever evaluated). Callers with cheap predicates pick
// wide chunks to amortize the per-chunk synchronization, callers with
// expensive ones narrow chunks to bound wasted work; see the adaptive
// controller in internal/core. pred must be safe for concurrent
// invocation, as for First.
func (e *Engine) FirstWidth(n, width int, pred func(i int) bool) int {
	if width < 1 {
		width = 1
	}
	g := min(e.workers, width)
	if g == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if pred(i) {
				return i
			}
		}
		return -1
	}
	hits := make([]bool, min(width, n))
	var first atomic.Pointer[capturedPanic]
	for base := 0; base < n; base += len(hits) {
		c := min(len(hits), n-base)
		gc := min(g, c)
		var wg sync.WaitGroup
		for j := 1; j < gc; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				guard(&first, func() {
					for i := j; i < c; i += gc {
						hits[i] = pred(base + i)
					}
				})
			}(j)
		}
		// The calling goroutine takes stride 0 itself, so a serial engine
		// path is never slower than the plain loop.
		guard(&first, func() {
			for i := 0; i < c; i += gc {
				hits[i] = pred(base + i)
			}
		})
		wg.Wait()
		rethrow(&first)
		for i := 0; i < c; i++ {
			if hits[i] {
				return base + i
			}
		}
	}
	return -1
}

// Map evaluates fn(i) for every i in [0, n) across the engine's workers and
// returns the results in index order. Work is handed out dynamically, so
// uneven per-index cost balances across workers; the result ordering is
// deterministic regardless. fn must be safe for concurrent invocation.
func Map[T any](e *Engine, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if e.workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var first atomic.Pointer[capturedPanic]
	var wg sync.WaitGroup
	for w := 0; w < min(e.workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for first.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				guard(&first, func() { out[i] = fn(i) })
			}
		}()
	}
	wg.Wait()
	rethrow(&first)
	return out
}
