package parallel

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// serialFirst is the reference semantics First must reproduce.
func serialFirst(n int, pred func(int) bool) int {
	for i := 0; i < n; i++ {
		if pred(i) {
			return i
		}
	}
	return -1
}

// TestFirstMatchesSerial fuzzes random predicate vectors across worker
// counts and requires the parallel scan to return exactly the serial answer.
func TestFirstMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	workers := []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		truth := make([]bool, n)
		for i := range truth {
			truth[i] = rng.Intn(4) == 0
		}
		pred := func(i int) bool { return truth[i] }
		want := serialFirst(n, pred)
		for _, w := range workers {
			if got := New(w).First(n, pred); got != want {
				t.Fatalf("trial %d workers %d: First=%d want %d (truth %v)",
					trial, w, got, want, truth)
			}
		}
	}
}

// TestFirstBoundsSpeculation verifies the chunking contract: no index beyond
// the winning chunk is ever evaluated.
func TestFirstBoundsSpeculation(t *testing.T) {
	const n, w, hit = 64, 4, 5 // hit inside the second chunk [4,8)
	var calls [n]atomic.Int32
	e := New(w)
	got := e.First(n, func(i int) bool {
		calls[i].Add(1)
		return i == hit
	})
	if got != hit {
		t.Fatalf("First=%d want %d", got, hit)
	}
	limit := (hit/w + 1) * w // end of the winning chunk
	for i := range calls {
		c := calls[i].Load()
		if i < limit && c != 1 {
			t.Errorf("index %d evaluated %d times, want 1", i, c)
		}
		if i >= limit && c != 0 {
			t.Errorf("index %d beyond winning chunk evaluated %d times", i, c)
		}
	}
}

// TestMapOrderAndCoverage checks Map evaluates every index exactly once and
// returns results in index order for every worker count.
func TestMapOrderAndCoverage(t *testing.T) {
	for _, w := range []int{1, 2, 5, 16} {
		e := New(w)
		var calls [100]atomic.Int32
		out := Map(e, len(calls), func(i int) int {
			calls[i].Add(1)
			return i * i
		})
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers %d: out[%d]=%d want %d", w, i, v, i*i)
			}
			if c := calls[i].Load(); c != 1 {
				t.Fatalf("workers %d: index %d evaluated %d times", w, i, c)
			}
		}
	}
}

// TestPanicPropagation verifies a worker panic surfaces on the calling
// goroutine — never on a bare goroutine, which would kill the process — for
// both primitives and for serial and parallel engines.
func TestPanicPropagation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: panic did not propagate to the caller", name)
			}
		}()
		fn()
	}
	for _, w := range []int{1, 4} {
		e := New(w)
		mustPanic(fmt.Sprintf("First workers=%d", w), func() {
			e.First(8, func(i int) bool {
				if i == 2 {
					panic("boom")
				}
				return false
			})
		})
		mustPanic(fmt.Sprintf("Map workers=%d", w), func() {
			Map(e, 8, func(i int) int {
				if i == 2 {
					panic("boom")
				}
				return i
			})
		})
	}
}

// TestDefaultsAndEdges pins the constructor conventions and the empty-input
// behavior.
func TestDefaultsAndEdges(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers()=%d want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers()=%d want GOMAXPROCS", got)
	}
	if got := Serial().Workers(); got != 1 {
		t.Errorf("Serial().Workers()=%d want 1", got)
	}
	e := New(4)
	if got := e.First(0, func(int) bool { return true }); got != -1 {
		t.Errorf("First over empty domain = %d want -1", got)
	}
	if out := Map(e, 0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("Map over empty domain returned %v", out)
	}
}

// TestFirstWidthMatchesSerial fuzzes random predicate vectors across worker
// counts AND chunk widths: the returned index must be the serial answer at
// every (workers, width) combination, including widths below, equal to and
// above the worker count.
func TestFirstWidthMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	workers := []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
	widths := []int{0, 1, 2, 3, 5, 8, 16, 40}
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(30)
		truth := make([]bool, n)
		for i := range truth {
			truth[i] = rng.Intn(5) == 0
		}
		pred := func(i int) bool { return truth[i] }
		want := serialFirst(n, pred)
		for _, w := range workers {
			e := New(w)
			for _, width := range widths {
				if got := e.FirstWidth(n, width, pred); got != want {
					t.Fatalf("trial %d workers %d width %d: FirstWidth=%d want %d (truth %v)",
						trial, w, width, got, want, truth)
				}
			}
		}
	}
}

// TestFirstWidthBoundsSpeculation verifies the width-controlled chunking
// contract at every width: each index up to the end of the winning chunk is
// evaluated exactly once, and no index beyond the winning chunk is ever
// evaluated — the property the adaptive controller in internal/core leans
// on to bound wasted work.
func TestFirstWidthBoundsSpeculation(t *testing.T) {
	const n = 64
	for _, w := range []int{1, 2, 4, 8} {
		e := New(w)
		for _, width := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
			for _, hit := range []int{0, 1, 5, 17, 40, 63} {
				var calls [n]atomic.Int32
				got := e.FirstWidth(n, width, func(i int) bool {
					calls[i].Add(1)
					return i == hit
				})
				if got != hit {
					t.Fatalf("workers %d width %d: FirstWidth=%d want %d", w, width, got, hit)
				}
				limit := (hit/width + 1) * width // end of the winning chunk
				if limit > n {
					limit = n
				}
				for i := range calls {
					c := calls[i].Load()
					switch {
					case i <= hit && c != 1:
						// Everything up to the hit is evaluated exactly once.
						t.Errorf("workers %d width %d hit %d: index %d evaluated %d times, want 1",
							w, width, hit, i, c)
					case i < limit && c > 1:
						// Within the winning chunk, speculation runs at most
						// once (the serial path legitimately skips these).
						t.Errorf("workers %d width %d hit %d: index %d evaluated %d times, want <=1",
							w, width, hit, i, c)
					case i >= limit && c != 0:
						t.Errorf("workers %d width %d hit %d: index %d beyond winning chunk evaluated %d times",
							w, width, hit, i, c)
					}
				}
			}
		}
	}
}

// TestFirstWidthDefaultEqualsFirst pins the delegation contract: First is
// FirstWidth at width = Workers, so both see identical evaluation sets.
func TestFirstWidthDefaultEqualsFirst(t *testing.T) {
	e := New(4)
	for hit := 0; hit < 20; hit++ {
		var a, b [20]atomic.Int32
		pred := func(calls *[20]atomic.Int32) func(int) bool {
			return func(i int) bool {
				calls[i].Add(1)
				return i == hit
			}
		}
		if x, y := e.First(20, pred(&a)), e.FirstWidth(20, e.Workers(), pred(&b)); x != y {
			t.Fatalf("hit %d: First=%d FirstWidth=%d", hit, x, y)
		}
		for i := range a {
			if a[i].Load() != b[i].Load() {
				t.Fatalf("hit %d: index %d evaluated %d vs %d times", hit, i, a[i].Load(), b[i].Load())
			}
		}
	}
}
