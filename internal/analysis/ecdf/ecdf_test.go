package ecdf

import (
	"math/rand"
	"testing"

	"mcsched/internal/analysis/ey"
	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

func TestBasicAcceptReject(t *testing.T) {
	if !Schedulable(mcs.TaskSet{mcs.NewHC(0, 1, 2, 4)}) {
		t.Error("single HC task rejected")
	}
	if Schedulable(mcs.TaskSet{mcs.NewHC(0, 2, 3, 4), mcs.NewHC(1, 1, 2, 4)}) {
		t.Error("HI-overloaded set accepted")
	}
	if !Schedulable(nil) {
		t.Error("empty set rejected")
	}
}

// The headline relationship the paper relies on: ECDF dominates EY per set
// (EY is "identical … but relatively less efficient"). Our construction
// guarantees it: pass 1 of ECDF is exactly the EY test.
func TestDominatesEY(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eyAcc, ecdfAcc := 0, 0
	for i := 0; i < 400; i++ {
		ts := randomSet(rng, 1+rng.Intn(6))
		e := ey.Schedulable(ts)
		c := Schedulable(ts)
		if e {
			eyAcc++
			if !c {
				t.Fatalf("EY accepted but ECDF rejected: %v", ts)
			}
		}
		if c {
			ecdfAcc++
		}
	}
	if ecdfAcc < eyAcc {
		t.Fatalf("ECDF accepted %d < EY %d", ecdfAcc, eyAcc)
	}
	t.Logf("EY %d, ECDF %d of 400", eyAcc, ecdfAcc)
}

func randomSet(rng *rand.Rand, n int) mcs.TaskSet {
	var ts mcs.TaskSet
	for i := 0; i < n; i++ {
		T := mcs.Ticks(5 + rng.Intn(50))
		if rng.Intn(2) == 0 {
			c := mcs.Ticks(1 + rng.Intn(int(T)/3+1))
			ts = append(ts, mcs.NewLC(i, c, T))
		} else {
			ch := mcs.Ticks(1 + rng.Intn(int(T)/2+1))
			cl := mcs.Ticks(1 + rng.Intn(int(ch)))
			d := ch + mcs.Ticks(rng.Intn(int(T-ch)+1))
			ts = append(ts, mcs.NewHCConstrained(i, cl, ch, T, d))
		}
	}
	return ts
}

// Accepted assignments must satisfy both QPA tests.
func TestResultSelfConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	restartWins := 0
	for i := 0; i < 400; i++ {
		ts := randomSet(rng, 2+rng.Intn(5))
		r := Analyze(ts, DefaultOptions())
		if !r.Schedulable {
			continue
		}
		if r.Restarts > 0 {
			restartWins++
		}
		if !ey.LOFeasible(ts, r.VD) {
			t.Fatalf("accepted assignment fails LO test: %v / %v", ts, r.VD)
		}
		if _, ok := ey.HIFeasible(ts, r.VD); !ok {
			t.Fatalf("accepted assignment fails HI test: %v / %v", ts, r.VD)
		}
	}
	t.Logf("restart pass decided %d sets", restartWins)
}

// The scale-factor restarts must find sets the plain EY greedy misses at
// least occasionally on constrained-deadline workloads — otherwise ECDF
// degenerates to EY and the reconstruction note in DESIGN.md is wrong.
func TestRestartsAddValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := taskgen.DefaultConfig(1, 0.7, 0.35, 0.3)
	cfg.Constrained = true
	extra := 0
	for i := 0; i < 300; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !ey.Schedulable(ts) && Schedulable(ts) {
			extra++
		}
	}
	if extra == 0 {
		t.Error("ECDF never beat EY on 300 constrained sets — search adds no value")
	}
	t.Logf("ECDF rescued %d/300 sets EY rejected", extra)
}

func TestLOInfeasibleShortCircuit(t *testing.T) {
	// ΣC^L/T > 1: no assignment can help; must reject quickly.
	ts := mcs.TaskSet{mcs.NewHC(0, 3, 3, 4), mcs.NewHC(1, 2, 2, 4)}
	r := Analyze(ts, DefaultOptions())
	if r.Schedulable {
		t.Error("LO-overloaded set accepted")
	}
	if r.Restarts != 0 {
		t.Errorf("restarts attempted on LO-infeasible set: %d", r.Restarts)
	}
}

func TestTestAdapter(t *testing.T) {
	var tst Test
	if tst.Name() != "ECDF" {
		t.Errorf("Name = %q", tst.Name())
	}
	if !tst.Schedulable(mcs.TaskSet{mcs.NewHC(0, 1, 2, 10)}) {
		t.Error("adapter rejected trivial set")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	cfg := taskgen.DefaultConfig(1, 0.7, 0.35, 0.25)
	cfg.Constrained = true
	sets := make([]mcs.TaskSet, 32)
	for i := range sets {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = ts
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(sets[i%len(sets)], DefaultOptions())
	}
}
