// Package ecdf implements the ECDF schedulability test in the style of
// Easwaran, "Demand-based scheduling of mixed-criticality sporadic tasks on
// one processor" (RTSS 2013). ECDF shares the demand-bound machinery of the
// Ekberg–Yi test (package ey) — LO-mode steps on virtual deadlines, HI-mode
// carry-over sawtooths — and differs in its greedy virtual-deadline
// assignment, which is the component the original paper credits for its
// gain over Ekberg–Yi.
//
// Reconstruction note (see DESIGN.md): the original's exact greedy is not
// reproducible from the text we work from; we implement a strictly stronger
// search — first the EY shaping pass, then uniform scale-factor restarts
// with failure-guided tuning from each. By construction every set accepted
// by package ey is accepted here, matching the paper's characterization of
// EY as "identical … but relatively less efficient in terms of
// schedulability".
package ecdf

import (
	"mcsched/internal/analysis/ey"
	"mcsched/internal/mcs"
)

// Options tunes the search.
type Options struct {
	// EY configures the embedded shaping passes.
	EY ey.Options
	// Lambdas are the scale factors for restart assignments
	// d = C^L + λ(D − C^L). Defaults to {0.8, 0.6, 0.4, 0.2, 0.05}.
	Lambdas []float64
}

// DefaultOptions returns the defaults used by the experiments.
func DefaultOptions() Options {
	return Options{
		EY:      ey.DefaultOptions(),
		Lambdas: []float64{0.8, 0.6, 0.4, 0.2, 0.05},
	}
}

// Result is the ECDF verdict with the accepted virtual-deadline assignment.
type Result struct {
	Schedulable bool
	VD          map[int]mcs.Ticks
	// Restarts counts the scale-factor restarts used (0 means the EY pass
	// already succeeded).
	Restarts int
}

// Analyze runs the ECDF search.
func Analyze(ts mcs.TaskSet, opts Options) Result {
	if len(opts.Lambdas) == 0 {
		opts.Lambdas = DefaultOptions().Lambdas
	}
	if opts.EY.MaxIter == 0 {
		opts.EY = ey.DefaultOptions()
	}

	// Pass 1: the EY greedy from the loosest assignment.
	if r := ey.Analyze(ts, opts.EY); r.Schedulable {
		return Result{Schedulable: true, VD: r.VD}
	}

	// The LO test with d=D failing means even plain LO-mode EDF fails; no
	// assignment can help (shrinking deadlines only raises LO demand).
	if !ey.LOFeasible(ts, ey.InitialAssignment(ts)) {
		return Result{}
	}

	// Pass 2: scale-factor restarts. Each restart starts from a uniformly
	// tightened assignment; LO-infeasible starts are relaxed per task until
	// LO passes, then the shaping loop repairs HI failures.
	for i, lambda := range opts.Lambdas {
		a := ey.ScaledAssignment(ts, lambda)
		a = relaxUntilLOFeasible(ts, a)
		if a == nil {
			continue
		}
		if vd, ok := ey.ShapeFrom(ts, a, opts.EY); ok {
			return Result{Schedulable: true, VD: vd, Restarts: i + 1}
		}
	}
	return Result{}
}

// relaxUntilLOFeasible enlarges virtual deadlines toward D until the LO
// test passes, or returns nil when even d=D fails (checked by the caller,
// so nil is defensive here). It relaxes the task whose deadline shrink is
// largest first — the cheapest LO-demand repair.
func relaxUntilLOFeasible(ts mcs.TaskSet, a ey.Assignment) ey.Assignment {
	for rounds := 0; rounds < len(ts)+1; rounds++ {
		if ey.LOFeasible(ts, a) {
			return a
		}
		// Relax the most-shrunk task halfway to its real deadline.
		var pick mcs.Task
		var worst mcs.Ticks = -1
		for _, t := range ts {
			if !t.IsHC() {
				continue
			}
			if gap := t.Deadline - a[t.ID]; gap > worst {
				worst, pick = gap, t
			}
		}
		if worst <= 0 {
			return nil
		}
		a[pick.ID] = a[pick.ID] + (pick.Deadline-a[pick.ID]+1)/2
	}
	if ey.LOFeasible(ts, a) {
		return a
	}
	return nil
}

// Schedulable is the boolean wrapper with default options.
func Schedulable(ts mcs.TaskSet) bool { return Analyze(ts, DefaultOptions()).Schedulable }

// Test is the partitioning-test adapter for ECDF.
type Test struct {
	Opts Options
}

// Name implements the test interface.
func (Test) Name() string { return "ECDF" }

// Schedulable implements the test interface.
func (t Test) Schedulable(ts mcs.TaskSet) bool {
	o := t.Opts
	if len(o.Lambdas) == 0 {
		o = DefaultOptions()
	}
	return Analyze(ts, o).Schedulable
}
