package ecdf

import (
	"mcsched/internal/analysis/ey"
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core ECDF engine, built on the same
// array-backed ey.Shaper and ey.Memo the EY analyzer uses: positional
// demand curves mutated in place across the EY pass and the scale-factor
// restarts, fast-path filters in front (see ey.QuickVerdict — the
// soundness argument carries over verbatim because every restart drives
// the identical LO/HI QPA machinery), and a warm path that folds a
// prefix-extension probe's newcomer into the cached filter sums and
// loosest curves instead of rebuilding them. The search itself replays
// Analyze step for step — same pass order, same relaxation picks, same
// shaping trajectories — so verdicts stay bit-identical to the stateless
// test on every path.
type Analyzer struct {
	opts Options
	ctr  kernel.Counters
	sh   ey.Shaper
	memo ey.Memo
	// curvesOK gates the curve cache: it holds while sh's arrays describe
	// memo.Mem under the loosest assignment.
	curvesOK bool
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer {
	o := t.Opts
	if len(o.Lambdas) == 0 {
		o = DefaultOptions()
	}
	if o.EY.MaxIter == 0 {
		o.EY = ey.DefaultOptions()
	}
	return &Analyzer{opts: o}
}

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// Schedulable implements kernel.Analyzer; the verdict is bit-identical to
// Test.Schedulable.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	warm := a.memo.Extends(ts)
	var q ey.QuickState
	if warm {
		q = a.memo.Quick.Extend(ts[len(ts)-1])
	} else {
		q = ey.FoldQuick(ts)
	}
	switch v := q.Verdict(); {
	case v < 0:
		a.ctr.FastRejects++
		return false
	case v > 0:
		// Accepted by the EY pass already (LC-only density bound), which
		// ECDF returns without any restart.
		a.ctr.FastAccepts++
		a.promoteFiltered(ts, warm, q)
		return true
	}

	if warm && a.curvesOK {
		x := ts[len(ts)-1]
		undo := a.sh.Extend(x)
		ok, deep := a.runExact()
		a.ctr.WarmStarts++
		if deep {
			a.ctr.ExactRuns++
		} else {
			a.ctr.IncrementalHits++
		}
		if ok {
			a.memo.PromoteWarm(x, q)
			a.sh.RestoreLoosest()
		} else {
			a.sh.Truncate(undo)
			a.sh.RestoreLoosest()
		}
		return ok
	}

	a.ctr.ExactRuns++
	a.sh.Reset(ts)
	ok, _ := a.runExact()
	if ok {
		a.memo.PromoteCold(ts, q)
		a.sh.RestoreLoosest()
		a.curvesOK = true
	} else {
		a.curvesOK = false
	}
	return ok
}

// runExact replays Analyze's search on the Shaper's loosest-state curves.
// A LO-infeasible loosest assignment short-circuits the restarts
// (shrinking deadlines only raises LO demand), mirroring Analyze's second
// check. deep reports whether any shaping or restart work ran (vs a
// zero-iteration decision straight off the cached loosest curves).
func (a *Analyzer) runExact() (ok, deep bool) {
	// Pass 1: the EY greedy from the loosest assignment.
	if !a.sh.LOFeasible() {
		return false, false
	}
	w, hiOK := a.sh.HIFeasible()
	if hiOK {
		return true, false
	}
	if a.sh.ShapeResume(w, a.opts.EY.EffectiveMaxIter()) {
		return true, true
	}

	// Pass 2: scale-factor restarts, each from a uniformly tightened
	// assignment relaxed per task until LO passes.
	for _, lambda := range a.opts.Lambdas {
		a.sh.Scale(lambda)
		if !a.relaxUntilLOFeasible() {
			continue
		}
		if a.sh.Shape(a.opts.EY.EffectiveMaxIter()) {
			return true, true
		}
	}
	return false, true
}

// relaxUntilLOFeasible is relaxUntilLOFeasible on the Shaper's arrays:
// identical relaxation order (the HC scan in task order, most-shrunk task
// first, halfway to its real deadline) and a boolean report instead of a
// nil map.
func (a *Analyzer) relaxUntilLOFeasible() bool {
	for rounds := 0; rounds < a.sh.NumTasks()+1; rounds++ {
		if a.sh.LOFeasible() {
			return true
		}
		pick := -1
		var worst mcs.Ticks = -1
		for j := 0; j < a.sh.NumHC(); j++ {
			if gap := a.sh.HCDeadline(j) - a.sh.HCVD(j); gap > worst {
				worst, pick = gap, j
			}
		}
		if worst <= 0 {
			return false
		}
		d := a.sh.HCVD(pick)
		a.sh.SetHCVD(pick, d+(a.sh.HCDeadline(pick)-d+1)/2)
	}
	return a.sh.LOFeasible()
}

// promoteFiltered records a filter-resolved accept, extending the cached
// curves when they are live so later exact probes stay seeded.
func (a *Analyzer) promoteFiltered(ts mcs.TaskSet, warm bool, q ey.QuickState) {
	if warm {
		x := ts[len(ts)-1]
		if a.curvesOK {
			a.sh.Extend(x)
		}
		a.memo.PromoteWarm(x, q)
		return
	}
	a.curvesOK = false
	a.memo.PromoteCold(ts, q)
}

// Forget implements kernel.Analyzer: memo compaction plus a curve rebuild
// for the compacted set, keeping the memo valid across releases.
func (a *Analyzer) Forget(id int) {
	if !a.memo.Forget(id) {
		return
	}
	if a.curvesOK {
		a.sh.Reset(mcs.TaskSet(a.memo.Mem))
	}
}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {
	a.memo.Invalidate()
	a.curvesOK = false
}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
