package ecdf

import (
	"mcsched/internal/analysis/ey"
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core ECDF engine: one ey.Engine's curve
// buffers plus reusable assignment maps shared across the EY pass and the
// scale-factor restarts. It runs the same fast-path filters as the EY
// analyzer (see ey.QuickVerdict — the soundness argument carries over
// verbatim because every restart drives the identical LO/HI QPA machinery),
// then replays Analyze's search step for step on the scratch state, so
// verdicts stay bit-identical to the stateless test.
type Analyzer struct {
	opts   Options
	ctr    kernel.Counters
	eng    ey.Engine
	assign ey.Assignment
	frozen map[int]bool
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer {
	o := t.Opts
	if len(o.Lambdas) == 0 {
		o = DefaultOptions()
	}
	if o.EY.MaxIter == 0 {
		o.EY = ey.DefaultOptions()
	}
	return &Analyzer{opts: o, assign: make(ey.Assignment), frozen: make(map[int]bool)}
}

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// Schedulable implements kernel.Analyzer; the verdict is bit-identical to
// Test.Schedulable.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	switch v := ey.QuickVerdict(ts); {
	case v < 0:
		a.ctr.FastRejects++
		return false
	case v > 0:
		// Accepted by the EY pass already (LC-only density bound), which
		// ECDF returns without any restart.
		a.ctr.FastAccepts++
		return true
	}
	a.ctr.ExactRuns++

	// Pass 1: the EY greedy from the loosest assignment. A LO-infeasible
	// loosest assignment also short-circuits the restarts (shrinking
	// deadlines only raises LO demand), mirroring Analyze's second check.
	clear(a.assign)
	clear(a.frozen)
	ey.InitialInto(ts, a.assign)
	if !a.eng.LOFeasible(ts, a.assign) {
		return false
	}
	if a.eng.ShapeInPlace(ts, a.assign, a.frozen, a.opts.EY) {
		return true
	}

	// Pass 2: scale-factor restarts, each from a uniformly tightened
	// assignment relaxed per task until LO passes.
	for _, lambda := range a.opts.Lambdas {
		clear(a.assign)
		ey.ScaledInto(ts, lambda, a.assign)
		if !a.relaxUntilLOFeasible(ts, a.assign) {
			continue
		}
		clear(a.frozen)
		if a.eng.ShapeInPlace(ts, a.assign, a.frozen, a.opts.EY) {
			return true
		}
	}
	return false
}

// relaxUntilLOFeasible is relaxUntilLOFeasible on the analyzer's engine:
// identical relaxation order, buffer-reusing feasibility checks, and a
// boolean report instead of a nil map.
func (a *Analyzer) relaxUntilLOFeasible(ts mcs.TaskSet, as ey.Assignment) bool {
	for rounds := 0; rounds < len(ts)+1; rounds++ {
		if a.eng.LOFeasible(ts, as) {
			return true
		}
		var pick mcs.Task
		var worst mcs.Ticks = -1
		for _, t := range ts {
			if !t.IsHC() {
				continue
			}
			if gap := t.Deadline - as[t.ID]; gap > worst {
				worst, pick = gap, t
			}
		}
		if worst <= 0 {
			return false
		}
		as[pick.ID] = as[pick.ID] + (pick.Deadline-as[pick.ID]+1)/2
	}
	return a.eng.LOFeasible(ts, as)
}

// Forget implements kernel.Analyzer; no cross-call memo is kept.
func (a *Analyzer) Forget(int) {}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
