// Package edf implements classic single-criticality EDF schedulability
// tests: the utilization bound for implicit deadlines and a
// processor-demand (dbf + QPA) test for constrained deadlines. They serve
// as non-MC baselines and as building blocks for sanity checks (e.g. a
// dual-criticality set with C^L = C^H must behave exactly like a non-MC
// set).
package edf

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/mcs"
)

// Level selects which budget the non-MC view of the task set uses.
type Level = mcs.Level

// UtilizationSchedulable applies the implicit-deadline EDF bound ΣU ≤ 1 at
// the given level (LO uses C^L for every task, HI uses C^H).
func UtilizationSchedulable(ts mcs.TaskSet, level Level) bool {
	var u float64
	for _, t := range ts {
		u += t.UtilAt(level)
	}
	return u <= 1+1e-12
}

// DemandSchedulable applies the processor-demand criterion
// ∀ℓ: Σ dbf(ℓ) ≤ ℓ at the given level using QPA. Valid for constrained
// deadlines.
func DemandSchedulable(ts mcs.TaskSet, level Level) bool {
	steps := make([]dbf.Step, 0, len(ts))
	for _, t := range ts {
		steps = append(steps, dbf.Step{C: t.WCET[level], D: t.Deadline, T: t.Period})
	}
	L, ok := dbf.HorizonLO(steps)
	if !ok {
		return false
	}
	sum := make(dbf.Sum, len(steps))
	for i := range steps {
		sum[i] = steps[i]
	}
	return dbf.QPA(sum, L)
}

// Test is a partitioning-test adapter for worst-case-reservation EDF: every
// task is provisioned at its own criticality level's budget (C^H for HC,
// C^L for LC) — the "static reservation" strawman the MC literature
// improves on.
type Test struct {
	// Demand switches to the dbf test (needed for constrained deadlines).
	Demand bool
}

// Name implements the test interface.
func (t Test) Name() string {
	if t.Demand {
		return "EDF-demand"
	}
	return "EDF-util"
}

// Schedulable implements the test interface.
func (t Test) Schedulable(ts mcs.TaskSet) bool {
	if t.Demand {
		return DemandSchedulable(ts, mcs.HI)
	}
	return UtilizationSchedulable(ts, mcs.HI)
}
