package edf

import (
	"math/rand"
	"testing"

	"mcsched/internal/mcs"
)

func TestUtilization(t *testing.T) {
	ts := mcs.TaskSet{mcs.NewLC(0, 5, 10), mcs.NewHC(1, 2, 5, 10)}
	if !UtilizationSchedulable(ts, mcs.LO) { // 0.5 + 0.2 = 0.7
		t.Error("LO view rejected")
	}
	if !UtilizationSchedulable(ts, mcs.HI) { // 0.5 + 0.5 = 1.0
		t.Error("HI view rejected at exactly 1")
	}
	ts = append(ts, mcs.NewLC(2, 1, 10))
	if UtilizationSchedulable(ts, mcs.HI) { // 1.1
		t.Error("overloaded HI view accepted")
	}
}

func TestDemandImplicitMatchesUtilization(t *testing.T) {
	// For implicit deadlines the demand criterion and ΣU ≤ 1 coincide.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		var ts mcs.TaskSet
		n := 1 + rng.Intn(5)
		for j := 0; j < n; j++ {
			T := mcs.Ticks(4 + rng.Intn(40))
			c := mcs.Ticks(1 + rng.Intn(int(T)))
			ts = append(ts, mcs.NewLC(j, c, T))
		}
		u := UtilizationSchedulable(ts, mcs.LO)
		d := DemandSchedulable(ts, mcs.LO)
		if u != d {
			t.Fatalf("util=%v demand=%v for %v", u, d, ts)
		}
	}
}

func TestDemandConstrained(t *testing.T) {
	// D < T tightens the test: (C=2, D=2, T=4) twice is infeasible even
	// though U = 1 ≤ 1... actually U=1 with D=2: demand(2)=4 > 2.
	ts := mcs.TaskSet{
		mcs.NewLCConstrained(0, 2, 4, 2),
		mcs.NewLCConstrained(1, 2, 4, 2),
	}
	if DemandSchedulable(ts, mcs.LO) {
		t.Error("accepted two tasks demanding 4 units by time 2")
	}
	// One of them alone is fine.
	if !DemandSchedulable(ts[:1], mcs.LO) {
		t.Error("rejected single constrained task")
	}
}

func TestAdapter(t *testing.T) {
	ts := mcs.TaskSet{mcs.NewHC(0, 2, 5, 10), mcs.NewLC(1, 5, 10)}
	util := Test{}
	if util.Name() != "EDF-util" || !util.Schedulable(ts) {
		t.Errorf("util adapter: name=%q sched=%v", util.Name(), util.Schedulable(ts))
	}
	dem := Test{Demand: true}
	if dem.Name() != "EDF-demand" || !dem.Schedulable(ts) {
		t.Errorf("demand adapter: name=%q sched=%v", dem.Name(), dem.Schedulable(ts))
	}
	// Worst-case reservation: HC at C^H. Adding 0.1 breaks it.
	ts = append(ts, mcs.NewLC(2, 1, 10))
	if util.Schedulable(ts) {
		t.Error("util adapter accepted reservation overload")
	}
}
