package edf

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core engine for the worst-case-reservation
// EDF tests. The demand variant keeps its step curves in a reusable
// scratch slice and runs two-sided filters before QPA:
//
//   - necessary reject: Σ C/T above 1 with exactly the arithmetic
//     dbf.HorizonLO applies, so the exact path is guaranteed to agree;
//   - sufficient accept: the density bound Σ C/D ≤ 1 (with a safety
//     margin for float accumulation), under which dbf(ℓ) ≤ ℓ·ΣC/D ≤ ℓ
//     holds pointwise and QPA — being exact — must return true.
//
// Both variants are incremental on top of that. Every quantity the tests
// depend on — the utilization and density sums, the step curves, and the
// dbf.LOAccum horizon fold — is a left fold over the task slice, so when
// a probe prefix-extends the last accepted set the analyzer folds in only
// the newcomer's terms and re-decides. Adding a task only grows demand
// (each step curve is nonnegative), so the cached curves remain exactly
// the extended set's prefix and the full QPA walk re-runs over them from
// the extended horizon; removing a task only shrinks demand, and the
// Assigner compacts order-preservingly, so refolding the compacted memo
// reproduces the stateless folds bit-for-bit. All paths therefore keep
// verdicts bit-identical to the stateless tests.
type Analyzer struct {
	demand bool
	ctr    kernel.Counters
	steps  []dbf.Step

	// Tier-1 memo: filter sums folded over mem (the last accepted set, in
	// slice order). util doubles as the utilization variant's ΣU fold.
	valid       bool
	mem         []mcs.Task
	util        float64
	density     float64
	constrained bool

	// Tier-2 memo (demand variant only): steps holds mem's curves in mem
	// order and acc their LOAccum fold. Filter-resolved accepts keep it in
	// step (an O(1) append); Invalidate and cold rejects drop it.
	stepsOK bool
	acc     dbf.LOAccum
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer { return &Analyzer{demand: t.Demand} }

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{Demand: a.demand}.Name() }

// Schedulable implements kernel.Analyzer.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	if !a.demand {
		return a.utilization(ts)
	}

	// Filters mirror DemandSchedulable(ts, HI) on C^H budgets. util matches
	// HorizonLO's accumulation order exactly (steps are built in ts order);
	// density is only trusted when every task is constrained-deadline
	// (D ≤ T), which the bound's proof requires.
	warm := a.valid && kernel.PrefixExtends(ts, a.mem)
	var util, density float64
	var constrained bool
	if warm {
		x := ts[len(ts)-1]
		util = a.util + float64(x.CHi())/float64(x.Period)
		density = a.density + float64(x.CHi())/float64(x.Deadline)
		constrained = a.constrained && !(x.Deadline > x.Period || x.Deadline <= 0)
	} else {
		constrained = true
		for _, t := range ts {
			util += float64(t.CHi()) / float64(t.Period)
			density += float64(t.CHi()) / float64(t.Deadline)
			if t.Deadline > t.Period || t.Deadline <= 0 {
				constrained = false
			}
		}
	}
	const horizonEps = 1e-9 // dbf.horizon's own boundary slack
	if util > 1+horizonEps {
		a.ctr.FastRejects++
		return false
	}
	if constrained && density <= 1-1e-9 {
		a.ctr.FastAccepts++
		if !warm {
			// The cached curves (if any) describe the previous memo, not ts.
			a.stepsOK = false
		}
		a.promote(ts, warm, util, density, constrained)
		return true
	}

	a.ctr.ExactRuns++
	if warm && a.stepsOK {
		// Seeded exact run: extend the cached curves and horizon fold by the
		// newcomer's step instead of rebuilding both from scratch. The fold
		// order matches the cold rebuild (memo order is ts-prefix order), so
		// L and the QPA walk are bit-identical.
		a.ctr.WarmStarts++
		x := ts[len(ts)-1]
		saved := a.acc
		a.steps = append(a.steps, dbf.Step{C: x.WCET[mcs.HI], D: x.Deadline, T: x.Period})
		a.acc.Add(a.steps[len(a.steps)-1])
		if ok := a.runQPA(); ok {
			a.promote(ts, warm, util, density, constrained)
			return true
		}
		// Rejected: restore the memo to mem's curves.
		a.steps = a.steps[:len(a.steps)-1]
		a.acc = saved
		return false
	}
	steps := a.steps[:0]
	a.acc = dbf.LOAccum{}
	for _, t := range ts {
		steps = append(steps, dbf.Step{C: t.WCET[mcs.HI], D: t.Deadline, T: t.Period})
		a.acc.Add(steps[len(steps)-1])
	}
	a.steps = steps
	a.stepsOK = false // steps describe ts, not mem, until a promote
	if ok := a.runQPA(); ok {
		a.stepsOK = true
		a.promote(ts, false, util, density, constrained)
		return true
	}
	return false
}

// runQPA decides the accumulated curves: horizon from the fold, then the
// exact QPA walk.
func (a *Analyzer) runQPA() bool {
	L, ok := a.acc.Horizon()
	if !ok {
		return false
	}
	return dbf.QPA(dbf.StepSum(a.steps), L)
}

// utilization is the implicit-deadline ΣU ≤ 1 variant with the same
// fold-extension warm path; the sum is the only state the test has.
func (a *Analyzer) utilization(ts mcs.TaskSet) bool {
	if a.valid && kernel.PrefixExtends(ts, a.mem) {
		x := ts[len(ts)-1]
		u := a.util + x.UtilAt(mcs.HI)
		a.ctr.IncrementalHits++
		a.ctr.WarmStarts++
		ok := u <= 1+1e-12
		if ok {
			a.mem = append(a.mem, x)
			a.util = u
		}
		return ok
	}
	var u float64
	for _, t := range ts {
		u += t.UtilAt(mcs.HI)
	}
	ok := u <= 1+1e-12
	if ok {
		a.ctr.FastAccepts++
		a.mem = append(a.mem[:0], ts...)
		a.util = u
		a.valid = true
	} else {
		a.ctr.FastRejects++
	}
	return ok
}

// promote records an accepted set. On the warm path only the newcomer is
// appended (keeping the tier-2 curves in step when they were extended or
// remain absent); a cold promote rewrites the tier-1 memo and leaves
// stepsOK as the caller set it.
func (a *Analyzer) promote(ts mcs.TaskSet, warm bool, util, density float64, constrained bool) {
	if warm {
		x := ts[len(ts)-1]
		a.mem = append(a.mem, x)
		if a.stepsOK && len(a.steps) == len(a.mem)-1 {
			// Filter-resolved warm accept: the exact path did not extend the
			// curves, so do it here to keep steps aligned with mem.
			a.steps = append(a.steps, dbf.Step{C: x.WCET[mcs.HI], D: x.Deadline, T: x.Period})
			a.acc.Add(a.steps[len(a.steps)-1])
		}
	} else {
		// Cold promote: callers have already set stepsOK to whether the
		// curves in a.steps were rebuilt for ts.
		a.mem = append(a.mem[:0], ts...)
	}
	a.util, a.density, a.constrained = util, density, constrained
	a.valid = true
}

// Forget implements kernel.Analyzer: the removed task leaves the memo and
// every fold is recomputed over the compacted order — which is exactly
// the stateless fold of the set the Assigner will probe next, because
// removal compacts order-preservingly. The memo stays valid.
func (a *Analyzer) Forget(id int) {
	if !a.valid {
		return
	}
	j := -1
	for i := range a.mem {
		if a.mem[i].ID == id {
			j = i
			break
		}
	}
	if j < 0 {
		return
	}
	a.mem = append(a.mem[:j], a.mem[j+1:]...)
	a.util, a.density = 0, 0
	a.constrained = true
	for _, t := range a.mem {
		if a.demand {
			a.util += float64(t.CHi()) / float64(t.Period)
			a.density += float64(t.CHi()) / float64(t.Deadline)
			if t.Deadline > t.Period || t.Deadline <= 0 {
				a.constrained = false
			}
		} else {
			a.util += t.UtilAt(mcs.HI)
		}
	}
	if a.stepsOK {
		a.steps = append(a.steps[:j], a.steps[j+1:]...)
		a.acc = dbf.LOAccum{}
		for _, s := range a.steps {
			a.acc.Add(s)
		}
	}
}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() { a.valid, a.stepsOK = false, false }

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
