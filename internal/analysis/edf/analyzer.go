package edf

import (
	"mcsched/internal/analysis/dbf"
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core engine for the worst-case-reservation
// EDF tests. The utilization variant is already allocation-free; the demand
// variant keeps its step curves in a reusable scratch slice and runs
// two-sided filters before QPA:
//
//   - necessary reject: Σ C/T above 1 with exactly the arithmetic
//     dbf.HorizonLO applies, so the exact path is guaranteed to agree;
//   - sufficient accept: the density bound Σ C/D ≤ 1 (with a safety
//     margin for float accumulation), under which dbf(ℓ) ≤ ℓ·ΣC/D ≤ ℓ
//     holds pointwise and QPA — being exact — must return true.
//
// Both filters therefore preserve bit-identical verdicts.
type Analyzer struct {
	demand bool
	ctr    kernel.Counters
	steps  []dbf.Step
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer { return &Analyzer{demand: t.Demand} }

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{Demand: a.demand}.Name() }

// Schedulable implements kernel.Analyzer.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	if !a.demand {
		// The utilization test is a single pass; count the bound itself.
		ok := UtilizationSchedulable(ts, mcs.HI)
		if ok {
			a.ctr.FastAccepts++
		} else {
			a.ctr.FastRejects++
		}
		return ok
	}

	// Filters mirror DemandSchedulable(ts, HI) on C^H budgets. util matches
	// HorizonLO's accumulation order exactly (steps are built in ts order);
	// density is only trusted when every task is constrained-deadline
	// (D ≤ T), which the bound's proof requires.
	var util, density float64
	constrained := true
	for _, t := range ts {
		util += float64(t.CHi()) / float64(t.Period)
		density += float64(t.CHi()) / float64(t.Deadline)
		if t.Deadline > t.Period || t.Deadline <= 0 {
			constrained = false
		}
	}
	const horizonEps = 1e-9 // dbf.horizon's own boundary slack
	if util > 1+horizonEps {
		a.ctr.FastRejects++
		return false
	}
	if constrained && density <= 1-1e-9 {
		a.ctr.FastAccepts++
		return true
	}

	a.ctr.ExactRuns++
	steps := a.steps[:0]
	for _, t := range ts {
		steps = append(steps, dbf.Step{C: t.WCET[mcs.HI], D: t.Deadline, T: t.Period})
	}
	a.steps = steps
	L, ok := dbf.HorizonLO(steps)
	if !ok {
		return false
	}
	return dbf.QPA(dbf.StepSum(steps), L)
}

// Forget implements kernel.Analyzer; no per-core memo is kept.
func (a *Analyzer) Forget(int) {}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
