package edfvd

import (
	"testing"
	"testing/quick"

	"mcsched/internal/mcs"
)

// specSet decodes a compact quick-generated spec into a task set with one
// LC block and up to five HC tasks on a common period.
type specSet struct {
	LCUtil uint8
	HC     [5][2]uint8
}

func (s specSet) taskSet() mcs.TaskSet {
	const T = 10000
	ts := mcs.TaskSet{}
	if lc := int64(s.LCUtil%95) + 1; lc > 0 { // u^L in (0, 0.96]
		ts = append(ts, mcs.NewLC(0, mcs.Ticks(lc*T/100), T))
	}
	for i, p := range s.HC {
		lo := int64(p[0]%50) + 1 // ≤ 0.51
		hi := lo + int64(p[1]%50)
		ts = append(ts, mcs.NewHC(i+1, mcs.Ticks(lo*T/100), mcs.Ticks(hi*T/100), T))
	}
	return ts
}

// TestInPaperFormEquivalenceQuick: the x-factor formulation used by Analyze
// and the in-paper inequality a ≤ (1−c)/(1−(c−b)) accept exactly the same
// systems (whenever the virtual-deadline branch is the deciding one).
func TestInPaperFormEquivalenceQuick(t *testing.T) {
	prop := func(spec specSet) bool {
		ts := spec.taskSet()
		a, b, c := ts.ULL(), ts.ULH(), ts.UHH()
		res := Analyze(ts)

		plain := a+c <= 1+1e-12
		inPaper := false
		if den := 1 - (c - b); den > 0 && a+b <= 1+1e-12 && c <= 1+1e-12 {
			inPaper = a <= (1-c)/den+1e-9
		}
		want := plain || inPaper
		return res.Schedulable == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestXValidQuick: whenever the test accepts, the scaling factor is usable:
// x ∈ (0, 1], the LO-mode density a + b/x ≤ 1 and the HI-mode bound
// x·a + c ≤ 1 both hold.
func TestXValidQuick(t *testing.T) {
	prop := func(spec specSet) bool {
		ts := spec.taskSet()
		res := Analyze(ts)
		if !res.Schedulable {
			return true
		}
		if res.X <= 0 || res.X > 1 {
			return false
		}
		a, b, c := ts.ULL(), ts.ULH(), ts.UHH()
		if res.PlainEDF {
			return a+c <= 1+1e-9
		}
		return a+b/res.X <= 1+1e-9 && res.X*a+c <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestSpeedupBoundWitness: the utilization bound behind EDF-VD's 4/3
// speed-up guarantee — max(a+b, c) ≤ 3/4 implies acceptance. (Proof sketch:
// if a+c > 1 the x-branch needs x·a + c ≤ 1 with x = b/(1−a) ≤ (3/4−a)/(1−a);
// substituting c ≤ 3/4 reduces the requirement to (2a−1)² ≥ 0.) This is the
// property that gives the partitioned algorithms their 8/3 bound via
// Theorem 9 of Baruah et al. (RTS 2014).
func TestSpeedupBoundWitness(t *testing.T) {
	prop := func(spec specSet) bool {
		ts := spec.taskSet()
		a, b, c := ts.ULL(), ts.ULH(), ts.UHH()
		if a+b > 0.75 || c > 0.75 {
			return true // outside the bound's premise
		}
		return Schedulable(ts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotoneInLoad: adding a task never turns an unschedulable set
// schedulable (the test is monotone in every utilization).
func TestMonotoneInLoad(t *testing.T) {
	prop := func(spec specSet, extra uint8) bool {
		ts := spec.taskSet()
		before := Schedulable(ts)
		grown := ts.Clone()
		u := int64(extra%40) + 1
		grown = append(grown, mcs.NewLC(99, mcs.Ticks(u*100), 10000))
		after := Schedulable(grown)
		// after ⇒ before (contrapositive of monotonicity).
		return !after || before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLCCapacityConsistent: LCCapacity's bound is consistent with the test:
// adding LC utilization strictly below the bound keeps the set schedulable,
// and the HC-only set itself must be schedulable whenever capacity > 0.
func TestLCCapacityConsistent(t *testing.T) {
	prop := func(spec specSet) bool {
		hc := specSet{HC: spec.HC}.taskSet().HC() // drop the LC block
		capacity := LCCapacity(hc)
		if capacity <= 0.02 {
			return true
		}
		if !Schedulable(hc) {
			return false
		}
		const T = 10000
		probe := hc.Clone()
		u := capacity - 0.01
		probe = append(probe, mcs.NewLC(50, mcs.Ticks(u*T), T))
		return Schedulable(probe)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
