// Package edfvd implements the utilization-based uniprocessor
// schedulability test for EDF with Virtual Deadlines on implicit-deadline
// dual-criticality task systems (Baruah, Bonifaci, D'Angelo, Li,
// Marchetti-Spaccamela, van der Ster, Stougie — ECRTS 2012, Theorems 1–2).
//
// With a = Σ u^L over LC tasks, b = Σ u^L over HC tasks and c = Σ u^H over
// HC tasks, the system is accepted iff
//
//	a + c ≤ 1                                  (plain EDF suffices), or
//	a + b ≤ 1  and  x·a + c ≤ 1  with  x = b/(1−a),
//
// where x is the deadline-scaling factor applied to HC tasks in LO mode.
// The second condition is algebraically the in-paper form
// a ≤ (1−c)/(1−(c−b)). The test has an optimal speed-up bound of 4/3; used
// per-core inside any exhaustive partitioning strategy it yields a
// partitioned algorithm with speed-up 8/3 (Baruah et al., RTS 2014,
// Theorem 9).
package edfvd

import (
	"mcsched/internal/mcs"
)

// Result reports the outcome of the EDF-VD test together with the
// parameters a runtime scheduler needs.
type Result struct {
	// Schedulable is the test verdict.
	Schedulable bool
	// X is the virtual-deadline scaling factor to apply to HC tasks in LO
	// mode. X == 1 means plain EDF is sufficient (no deadline shrinking).
	// Undefined (0) when Schedulable is false.
	X float64
	// PlainEDF reports that the first condition (a + c ≤ 1) held, i.e. the
	// system is schedulable by worst-case-reservation EDF without virtual
	// deadlines.
	PlainEDF bool
}

// Analyze runs the EDF-VD utilization test on a uniprocessor task set. The
// test is defined for implicit deadlines; callers with constrained-deadline
// sets should use the dbf-based tests instead (Analyze does not check
// deadline shape — it uses utilizations only — but the verdict is only
// meaningful for implicit deadlines).
func Analyze(ts mcs.TaskSet) Result {
	return decide(ts.ULL(), ts.ULH(), ts.UHH())
}

// decide is the closed-form test on the three utilization sums. Split out
// so the incremental analyzer can re-run the decision on folded sums
// without materializing a task set; verdicts are a pure function of
// (a, b, c), which is what makes the warm path trivially exact.
func decide(a, b, c float64) Result {
	const eps = 1e-12 // absorb float accumulation noise at the boundary

	if a+c <= 1+eps {
		return Result{Schedulable: true, X: 1, PlainEDF: true}
	}
	// LO-mode EDF feasibility with shrunk deadlines requires x ≤ 1, i.e.
	// a + b ≤ 1; the HI-mode condition is x·a + c ≤ 1 with the smallest
	// admissible x = b/(1−a).
	if a+b <= 1+eps && a < 1 {
		x := b / (1 - a)
		if x*a+c <= 1+eps {
			if x <= 0 { // no HC tasks: b == 0 handled by a+c above, but be safe
				x = 1
			}
			return Result{Schedulable: true, X: x}
		}
	}
	return Result{}
}

// Schedulable is the boolean convenience wrapper around Analyze.
func Schedulable(ts mcs.TaskSet) bool { return Analyze(ts).Schedulable }

// Test is the mcsched schedulability-test adapter for EDF-VD.
type Test struct{}

// Name implements the partitioning test interface.
func (Test) Name() string { return "EDF-VD" }

// Schedulable implements the partitioning test interface.
func (Test) Schedulable(ts mcs.TaskSet) bool { return Schedulable(ts) }

// LCCapacity returns the largest additional LC utilization that the core
// could accept under the EDF-VD test given its current HC load, i.e. the
// bound (1−c)/(1−(c−b)) from the paper's Figure 1 discussion. It is useful
// for diagnostics and examples; partitioning itself re-runs the full test.
func LCCapacity(ts mcs.TaskSet) float64 {
	b := ts.ULH()
	c := ts.UHH()
	if c >= 1 {
		return 0
	}
	den := 1 - (c - b)
	if den <= 0 {
		return 0
	}
	// Virtual-deadline branch: a ≤ (1−c)/(1−(c−b)) and a ≤ 1−b (x ≤ 1).
	vd := (1 - c) / den
	if lim := 1 - b; lim < vd {
		vd = lim
	}
	// Plain EDF branch: a ≤ 1 − c.
	if alt := 1 - c; alt > vd {
		vd = alt
	}
	if vd < 0 {
		vd = 0
	}
	return vd
}
