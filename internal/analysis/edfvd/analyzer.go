package edfvd

import (
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core EDF-VD engine. The test is a
// closed-form function of three utilization sums (a = Σ u^L over LC,
// b = Σ u^L over HC, c = Σ u^H over HC), each a left fold over the task
// slice — so the analyzer memoizes the folded sums of the last accepted
// set and, when a probe prefix-extends it, decides by folding in only the
// newcomer's terms. The warm verdict is bit-identical to the stateless
// test by construction: float addition in the same order produces the
// same bits, and decide() is a pure function of the sums.
//
// Removals keep the memo valid: the Assigner compacts the core
// order-preservingly, so refolding the compacted memo reproduces exactly
// the sums the stateless test would compute on the next probe.
type Analyzer struct {
	ctr kernel.Counters

	valid   bool
	mem     []mcs.Task // last accepted set, slice order
	a, b, c float64    // ULL/ULH/UHH folds over mem, in mem order
}

// NewAnalyzer implements kernel.Incremental for Test.
func (Test) NewAnalyzer() kernel.Analyzer { return &Analyzer{} }

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// Schedulable implements kernel.Analyzer. The verdict is Analyze's,
// bit-identical by construction on both the cold and the warm path.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	warm := a.valid && kernel.PrefixExtends(ts, a.mem)
	var sa, sb, sc float64
	if warm {
		x := ts[len(ts)-1]
		sa, sb, sc = a.a, a.b, a.c
		if x.IsHC() {
			sb += x.ULo
			sc += x.UHi
		} else {
			sa += x.ULo
		}
	} else {
		sa, sb, sc = ts.ULL(), ts.ULH(), ts.UHH()
	}
	res := decide(sa, sb, sc)

	const eps = 1e-12 // the same boundary slack decide applies
	switch {
	case warm:
		// Decided entirely from memoized sums plus the newcomer's terms.
		a.ctr.IncrementalHits++
		a.ctr.WarmStarts++
	case res.PlainEDF:
		// Accepted by the a + c ≤ 1 utilization bound alone.
		a.ctr.FastAccepts++
	case res.Schedulable:
		a.ctr.ExactRuns++
	case sc > 1+eps || sa+sb > 1+eps:
		// Per-level utilization above 1 fails both branches outright:
		// c > 1 gives a + c > 1 and x·a + c ≥ c > 1, while a + b > 1 gives
		// a + c ≥ a + b > 1 (c ≥ b per task) and fails the x ≤ 1 condition.
		a.ctr.FastRejects++
	default:
		a.ctr.ExactRuns++
	}

	if res.Schedulable {
		if warm {
			a.mem = append(a.mem, ts[len(ts)-1])
		} else {
			a.mem = append(a.mem[:0], ts...)
		}
		a.a, a.b, a.c = sa, sb, sc
		a.valid = true
	}
	return res.Schedulable
}

// Forget implements kernel.Analyzer: the removed task leaves the memo and
// the sums are refolded over the compacted order. The memo stays valid —
// the refolded sums are exactly what the stateless test computes on the
// compacted set, because the Assigner removes tasks order-preservingly.
func (a *Analyzer) Forget(id int) {
	if !a.valid {
		return
	}
	j := -1
	for i := range a.mem {
		if a.mem[i].ID == id {
			j = i
			break
		}
	}
	if j < 0 {
		return
	}
	a.mem = append(a.mem[:j], a.mem[j+1:]...)
	m := mcs.TaskSet(a.mem)
	a.a, a.b, a.c = m.ULL(), m.ULH(), m.UHH()
}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() { a.valid = false }

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
