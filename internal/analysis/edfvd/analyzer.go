package edfvd

import (
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core EDF-VD engine. The test is a closed-form
// utilization check, so it is already allocation-free; the analyzer's job is
// to classify each decision for the fast-path counters (the plain-EDF branch
// is the "EDF-VD utilization bound" sufficient accept, a HI utilization
// above 1 the necessary reject) while returning Analyze's verdict verbatim.
type Analyzer struct {
	ctr kernel.Counters
}

// NewAnalyzer implements kernel.Incremental for Test.
func (Test) NewAnalyzer() kernel.Analyzer { return &Analyzer{} }

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{}.Name() }

// Schedulable implements kernel.Analyzer. The verdict is Analyze's,
// bit-identical by construction.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	res := Analyze(ts)
	const eps = 1e-12 // the same boundary slack Analyze applies
	switch {
	case res.PlainEDF:
		// Accepted by the a + c ≤ 1 utilization bound alone.
		a.ctr.FastAccepts++
	case res.Schedulable:
		a.ctr.ExactRuns++
	case ts.UHH() > 1+eps || ts.TotalLo() > 1+eps:
		// Per-level utilization above 1 fails both branches outright:
		// c > 1 gives a + c > 1 and x·a + c ≥ c > 1, while a + b > 1 gives
		// a + c ≥ a + b > 1 (c ≥ b per task) and fails the x ≤ 1 condition.
		a.ctr.FastRejects++
	default:
		a.ctr.ExactRuns++
	}
	return res.Schedulable
}

// Forget implements kernel.Analyzer; EDF-VD keeps no per-core memo (the
// utilization sums are recomputed in slice order so verdicts stay
// bit-identical to the stateless test even across releases).
func (a *Analyzer) Forget(int) {}

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() {}

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }
