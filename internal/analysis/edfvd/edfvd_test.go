package edfvd

import (
	"math"
	"math/rand"
	"testing"

	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

// set builds a task set from (uL, uH) pairs; uL == uH means an LC task.
func set(pairs ...[2]float64) mcs.TaskSet {
	var ts mcs.TaskSet
	for i, p := range pairs {
		const T = 1000
		cl := mcs.Ticks(math.Ceil(p[0] * T))
		ch := mcs.Ticks(math.Ceil(p[1] * T))
		var task mcs.Task
		if p[0] == p[1] {
			task = mcs.NewLC(i, cl, T)
		} else {
			task = mcs.NewHC(i, cl, ch, T)
		}
		task.ULo, task.UHi = p[0], p[1]
		ts = append(ts, task)
	}
	return ts
}

func TestPlainEDFBranch(t *testing.T) {
	// a + c = 0.4 + 0.5 ≤ 1 → plain EDF, x = 1.
	r := Analyze(set([2]float64{0.4, 0.4}, [2]float64{0.2, 0.5}))
	if !r.Schedulable || !r.PlainEDF || r.X != 1 {
		t.Errorf("got %+v, want plain-EDF accept", r)
	}
}

func TestVirtualDeadlineBranch(t *testing.T) {
	// a=0.4, b=0.3, c=0.7: a+c=1.1 > 1; x=0.3/0.6=0.5; x·a+c = 0.9 ≤ 1.
	r := Analyze(set([2]float64{0.4, 0.4}, [2]float64{0.3, 0.7}))
	if !r.Schedulable || r.PlainEDF {
		t.Fatalf("got %+v, want VD accept", r)
	}
	if math.Abs(r.X-0.5) > 1e-9 {
		t.Errorf("x = %g, want 0.5", r.X)
	}
}

func TestReject(t *testing.T) {
	// a=0.5, b=0.4, c=0.8: a+c=1.3; x=0.8; x·a+c=1.2 > 1 → reject.
	r := Analyze(set([2]float64{0.5, 0.5}, [2]float64{0.4, 0.8}))
	if r.Schedulable {
		t.Errorf("accepted infeasible set: %+v", r)
	}
	// LO-mode overload: a+b > 1.
	r = Analyze(set([2]float64{0.7, 0.7}, [2]float64{0.4, 0.45}))
	if r.Schedulable {
		t.Errorf("accepted LO-overloaded set: %+v", r)
	}
}

func TestInPaperForm(t *testing.T) {
	// The acceptance region must match a ≤ (1−c)/(1−(c−b)) whenever the
	// plain-EDF branch does not apply and a+b ≤ 1.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := rng.Float64()
		b := rng.Float64() * (1 - a) // keep a+b ≤ 1
		c := b + rng.Float64()*(1-b)
		ts := set([2]float64{a, a}, [2]float64{b, c})
		got := Schedulable(ts)
		want := a+c <= 1 || a <= (1-c)/(1-(c-b))
		if got != want {
			t.Fatalf("a=%g b=%g c=%g: got %v want %v", a, b, c, got, want)
		}
	}
}

func TestNoHCTasks(t *testing.T) {
	if !Schedulable(set([2]float64{0.5, 0.5}, [2]float64{0.45, 0.45})) {
		t.Error("pure-LC set with U ≤ 1 rejected")
	}
	if Schedulable(set([2]float64{0.6, 0.6}, [2]float64{0.5, 0.5})) {
		t.Error("pure-LC set with U > 1 accepted")
	}
}

func TestEmptySet(t *testing.T) {
	if !Schedulable(nil) {
		t.Error("empty set rejected")
	}
}

func TestDegenerateMCReducesToEDF(t *testing.T) {
	// C^L = C^H for all HC tasks ⇒ b == c ⇒ test degenerates to a+c ≤ 1.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := rng.Float64()
		c := rng.Float64()
		ts := set([2]float64{a, a})
		hc := mcs.NewHC(1, mcs.Ticks(c*1000)+1, mcs.Ticks(c*1000)+1, 1000)
		hc.ULo, hc.UHi = c, c
		ts = append(ts, hc)
		if got, want := Schedulable(ts), a+c <= 1+1e-12; got != want {
			t.Fatalf("a=%g c=%g: got %v want %v", a, c, got, want)
		}
	}
}

// Property: acceptance implies the published speed-up bound cannot be
// violated — any set with UB ≤ 3/4 on one processor must be accepted
// (the 4/3 speed-up bound of EDF-VD states all sets feasible on a speed-3/4
// processor are accepted; feasibility is implied by max(a+b, c) ≤ 3/4).
func TestSpeedupRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := rng.Float64() * 0.75
		b := rng.Float64() * (0.75 - a)
		c := b + rng.Float64()*(0.75-b)
		if math.Max(a+b, c) > 0.75 {
			continue
		}
		ts := set([2]float64{a, a}, [2]float64{b, c})
		if !Schedulable(ts) {
			t.Fatalf("a=%g b=%g c=%g inside speed-up region rejected", a, b, c)
		}
	}
}

func TestXBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		a, b := rng.Float64(), rng.Float64()
		c := b + rng.Float64()*math.Max(0, 1-b)
		r := Analyze(set([2]float64{a, a}, [2]float64{b, c}))
		if r.Schedulable && (r.X <= 0 || r.X > 1+1e-12) {
			t.Fatalf("a=%g b=%g c=%g: x=%g outside (0,1]", a, b, c, r.X)
		}
	}
}

func TestLCCapacity(t *testing.T) {
	// Figure-1-style diagnostic: capacity must be consistent with the test.
	hc := set([2]float64{0.3, 0.7})
	cap := LCCapacity(hc)
	// Just below the capacity: accepted; just above: rejected.
	below := append(hc.Clone(), lcTask(9, cap-0.01))
	above := append(hc.Clone(), lcTask(9, cap+0.01))
	if !Schedulable(below) {
		t.Errorf("LC load %.3f below capacity %.3f rejected", cap-0.01, cap)
	}
	if Schedulable(above) {
		t.Errorf("LC load %.3f above capacity %.3f accepted", cap+0.01, cap)
	}
	if LCCapacity(set([2]float64{0.2, 1.0})) != 0 {
		t.Error("saturated core reported spare LC capacity")
	}
}

func lcTask(id int, u float64) mcs.Task {
	task := mcs.NewLC(id, mcs.Ticks(u*1000)+1, 1000)
	task.ULo, task.UHi = u, u
	return task
}

func TestTestAdapter(t *testing.T) {
	var tst Test
	if tst.Name() != "EDF-VD" {
		t.Errorf("Name = %q", tst.Name())
	}
	if !tst.Schedulable(set([2]float64{0.3, 0.3}, [2]float64{0.2, 0.5})) {
		t.Error("adapter rejected feasible set")
	}
}

// Generated task sets with low UB should almost always pass; with UB > 1
// never (on one processor, since max(a+b, c) > 1 is infeasible).
func TestGeneratedExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := taskgen.DefaultConfig(1, 0.3, 0.15, 0.25) // UB = 0.4
	for i := 0; i < 50; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Schedulable(ts) {
			t.Errorf("UB=0.4 set rejected: %v", ts)
		}
	}
	cfg = taskgen.DefaultConfig(1, 0.99, 0.45, 0.55) // LO side = 1.0
	for i := 0; i < 50; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ts.TotalLo() > 1+1e-9 && Schedulable(ts) {
			t.Errorf("overloaded set accepted: ULL+ULH=%g", ts.TotalLo())
		}
	}
}
