package amc

import (
	"math/rand"
	"testing"

	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

func TestSingleTask(t *testing.T) {
	for _, v := range []Variant{RTB, Max} {
		if !Analyze(mcs.TaskSet{mcs.NewHC(0, 1, 4, 4)}, Options{Variant: v}).Schedulable {
			t.Errorf("%v rejected single tight HC task", v)
		}
		if !Analyze(mcs.TaskSet{mcs.NewLC(0, 4, 4)}, Options{Variant: v}).Schedulable {
			t.Errorf("%v rejected single tight LC task", v)
		}
	}
}

func TestKnownResponseTimes(t *testing.T) {
	// Classic RTA example: τ1 (C=1, T=D=4) high prio, τ2 (C=2, T=D=8):
	// R2^LO = 2 + ⌈R/4⌉·1 → R = 3.
	hi := mcs.NewLC(0, 1, 4)
	lo := mcs.NewLC(1, 2, 8)
	r, ok := responseLO(lo, mcs.TaskSet{hi})
	if !ok || r != 3 {
		t.Errorf("R^LO = %d, %v, want 3", r, ok)
	}
	// Infeasible: C=5 with D=4 interference makes R exceed D.
	bad := mcs.NewLC(2, 7, 8)
	if _, ok := responseLO(bad, mcs.TaskSet{hi}); ok {
		t.Error("overloaded response accepted")
	}
}

func TestModeSwitchInterference(t *testing.T) {
	// HC τ0 (C^L=1, C^H=2, T=D=10) with a higher-priority LC τ1
	// (C=2, T=D=5) and HC τ2 (C^L=1, C^H=3, T=D=10) highest.
	// Under AMC the LC task stops interfering after the switch; both
	// variants must accept.
	ts := mcs.TaskSet{
		mcs.NewHC(0, 1, 2, 10),
		mcs.NewLC(1, 2, 5),
		mcs.NewHC(2, 1, 3, 10),
	}
	for _, v := range []Variant{RTB, Max} {
		if !Analyze(ts, Options{Variant: v}).Schedulable {
			t.Errorf("%v rejected feasible AMC set", v)
		}
	}
}

func TestRejectOverload(t *testing.T) {
	ts := mcs.TaskSet{
		mcs.NewHC(0, 4, 8, 10),
		mcs.NewHC(1, 4, 8, 10),
	}
	for _, v := range []Variant{RTB, Max} {
		for _, p := range []PriorityPolicy{Audsley, DeadlineMonotonic} {
			if Analyze(ts, Options{Variant: v, Policy: p}).Schedulable {
				t.Errorf("%v/%v accepted HI-overloaded set", v, p)
			}
		}
	}
}

// AMC-max dominates AMC-rtb (Baruah/Burns/Davis): anything rtb accepts,
// max accepts.
func TestMaxDominatesRTB(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rtbAcc, maxAcc := 0, 0
	for i := 0; i < 500; i++ {
		ts := randomSet(rng, 2+rng.Intn(5))
		rtb := Analyze(ts, Options{Variant: RTB}).Schedulable
		mx := Analyze(ts, Options{Variant: Max}).Schedulable
		if rtb {
			rtbAcc++
			if !mx {
				t.Fatalf("rtb accepted, max rejected: %v", ts)
			}
		}
		if mx {
			maxAcc++
		}
	}
	if maxAcc <= rtbAcc {
		t.Logf("warning: max %d vs rtb %d — dominance strict nowhere in sample", maxAcc, rtbAcc)
	}
	t.Logf("rtb %d, max %d of 500", rtbAcc, maxAcc)
}

// Audsley dominates deadline-monotonic for OPA-compatible tests.
func TestAudsleyDominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dmAcc, audAcc := 0, 0
	for i := 0; i < 400; i++ {
		ts := randomSet(rng, 2+rng.Intn(5))
		dm := Analyze(ts, Options{Variant: RTB, Policy: DeadlineMonotonic}).Schedulable
		aud := Analyze(ts, Options{Variant: RTB, Policy: Audsley}).Schedulable
		if dm {
			dmAcc++
			if !aud {
				t.Fatalf("DM accepted, Audsley rejected: %v", ts)
			}
		}
		if aud {
			audAcc++
		}
	}
	t.Logf("DM %d, Audsley %d of 400", dmAcc, audAcc)
}

func randomSet(rng *rand.Rand, n int) mcs.TaskSet {
	var ts mcs.TaskSet
	for i := 0; i < n; i++ {
		T := mcs.Ticks(5 + rng.Intn(60))
		if rng.Intn(2) == 0 {
			c := mcs.Ticks(1 + rng.Intn(int(T)/4+1))
			d := c + mcs.Ticks(rng.Intn(int(T-c)+1))
			ts = append(ts, mcs.NewLCConstrained(i, c, T, d))
		} else {
			ch := mcs.Ticks(1 + rng.Intn(int(T)/3+1))
			cl := mcs.Ticks(1 + rng.Intn(int(ch)))
			d := ch + mcs.Ticks(rng.Intn(int(T-ch)+1))
			ts = append(ts, mcs.NewHCConstrained(i, cl, ch, T, d))
		}
	}
	return ts
}

// Priorities returned on acceptance must be a permutation of levels and
// re-checking the explicit order must agree.
func TestPriorityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for i := 0; i < 300; i++ {
		ts := randomSet(rng, 2+rng.Intn(5))
		r := Analyze(ts, DefaultOptions())
		if !r.Schedulable {
			continue
		}
		checked++
		if len(r.Priority) != len(ts) {
			t.Fatalf("priority map size %d != %d", len(r.Priority), len(ts))
		}
		seen := make(map[int]bool)
		order := make([]int, len(ts))
		for id, p := range r.Priority {
			if p < 0 || p >= len(ts) || seen[p] {
				t.Fatalf("bad priority %d for task %d", p, id)
			}
			seen[p] = true
			order[p] = id
		}
		if !feasibleOrder(ts, order, Max) {
			t.Fatalf("returned order fails re-check: %v / %v", ts, order)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no accepted sets to check")
	}
}

// Degenerate MC (C^L = C^H): AMC must reduce to plain fixed-priority RTA —
// the mode switch changes nothing, so LO acceptance decides.
func TestDegenerateReducesToRTA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		var ts mcs.TaskSet
		n := 2 + rng.Intn(4)
		for j := 0; j < n; j++ {
			T := mcs.Ticks(5 + rng.Intn(40))
			c := mcs.Ticks(1 + rng.Intn(int(T)/3+1))
			if rng.Intn(2) == 0 {
				ts = append(ts, mcs.NewLC(j, c, T))
			} else {
				ts = append(ts, mcs.NewHC(j, c, c, T))
			}
		}
		rtb := Analyze(ts, Options{Variant: RTB}).Schedulable
		mx := Analyze(ts, Options{Variant: Max}).Schedulable
		if rtb != mx {
			t.Fatalf("degenerate set: rtb=%v max=%v: %v", rtb, mx, ts)
		}
	}
}

func TestSwitchCandidates(t *testing.T) {
	hp := mcs.TaskSet{mcs.NewLC(0, 1, 5), mcs.NewHC(1, 1, 2, 7)}
	got := switchCandidates(hp, 12)
	want := []mcs.Ticks{0, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestHiJobs(t *testing.T) {
	k := mcs.NewHCConstrained(0, 1, 2, 10, 8)
	// M(k, s, t) = min(⌈(t−s−(T−D))/T⌉+1, ⌈t/T⌉), T−D = 2.
	if got := hiJobs(k, 0, 1); got != 1 {
		t.Errorf("hiJobs(0,1) = %d, want 1", got)
	}
	if got := hiJobs(k, 5, 30); got != 3 {
		// (30−5−2)/10 = 2.3 → ⌈⌉=3 → +1=4? No: ⌈23/10⌉=3, +1 = 4 — capped
		// by caller with ⌈t/T⌉=3; raw value here is 4.
		if got != 4 {
			t.Errorf("hiJobs(5,30) = %d, want 4 raw", got)
		}
	}
	if got := hiJobs(k, 20, 10); got != 0 {
		t.Errorf("hiJobs past window = %d, want 0", got)
	}
}

func TestEmptySet(t *testing.T) {
	if !Schedulable(nil) {
		t.Error("empty set rejected")
	}
}

func TestVariantNames(t *testing.T) {
	if RTB.String() != "AMC-rtb" || Max.String() != "AMC-max" {
		t.Errorf("names = %q, %q", RTB.String(), Max.String())
	}
	if (Test{Opts: Options{Variant: Max}}).Name() != "AMC-max" {
		t.Error("adapter name mismatch")
	}
}

func TestGeneratedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := taskgen.DefaultConfig(1, 0.3, 0.15, 0.2)
	for i := 0; i < 50; i++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Schedulable(ts) {
			// Fixed-priority cannot guarantee all light loads, but 0.3/0.2
			// should essentially always pass; tolerate nothing here to
			// catch regressions, revisit if the generator changes.
			t.Errorf("light-load set rejected: %v", ts)
		}
	}
}

func BenchmarkAnalyzeMax(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cfg := taskgen.DefaultConfig(1, 0.6, 0.3, 0.3)
	cfg.Constrained = true
	sets := make([]mcs.TaskSet, 32)
	for i := range sets {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = ts
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(sets[i%len(sets)], DefaultOptions())
	}
}
