// Package amc implements fixed-priority Adaptive Mixed-Criticality
// response-time analysis (Baruah, Burns, Davis — RTSS 2011): the LO-mode
// response-time test, the AMC-rtb bound, and the AMC-max analysis that
// maximizes over candidate mode-switch instants. Priorities are assigned
// with Audsley's optimal priority assignment (the paper's choice) or
// deadline-monotonic ordering.
//
// All arithmetic is exact on integer ticks. A task set is accepted when
// every LC task meets its deadline in LO mode and every HC task meets its
// deadline in both the LO-mode and the mode-switch analyses.
package amc

import (
	"sort"

	"mcsched/internal/mcs"
)

// Variant selects the HI-mode response-time bound.
type Variant int

const (
	// RTB is AMC-rtb: one fixed-point with HC interference at C^H and LC
	// interference frozen at the LO-mode response time.
	RTB Variant = iota
	// Max is AMC-max: maximize over candidate mode-switch instants s,
	// counting LC releases before s and splitting HC interference into
	// pre- and post-switch jobs. Dominates RTB.
	Max
)

// String names the variant.
func (v Variant) String() string {
	if v == Max {
		return "AMC-max"
	}
	return "AMC-rtb"
}

// PriorityPolicy selects how priorities are assigned before the RTA runs.
type PriorityPolicy int

const (
	// Audsley uses Audsley's optimal priority assignment with the chosen
	// variant as the per-level test.
	Audsley PriorityPolicy = iota
	// DeadlineMonotonic orders by increasing relative deadline (ties by
	// criticality: HC first, then by ID).
	DeadlineMonotonic
)

// Options configures the analysis.
type Options struct {
	Variant Variant
	Policy  PriorityPolicy
}

// DefaultOptions returns AMC-max with Audsley assignment, the strongest
// published configuration.
func DefaultOptions() Options { return Options{Variant: Max, Policy: Audsley} }

// Result reports the verdict and the priority order that passed.
type Result struct {
	Schedulable bool
	// Priority maps task ID → priority level (0 = highest). Only set when
	// Schedulable.
	Priority map[int]int
}

// Analyze runs the AMC schedulability test on a uniprocessor task set.
func Analyze(ts mcs.TaskSet, opts Options) Result {
	if len(ts) == 0 {
		return Result{Schedulable: true, Priority: map[int]int{}}
	}
	switch opts.Policy {
	case DeadlineMonotonic:
		order := dmOrder(ts)
		if feasibleOrder(ts, order, opts.Variant) {
			return Result{Schedulable: true, Priority: orderToPriority(order)}
		}
		return Result{}
	default:
		return audsley(ts, opts.Variant)
	}
}

// Schedulable is the boolean wrapper with default options.
func Schedulable(ts mcs.TaskSet) bool { return Analyze(ts, DefaultOptions()).Schedulable }

// dmOrder returns task IDs ordered highest priority first by deadline
// monotonic, breaking ties HC-first then by ID.
func dmOrder(ts mcs.TaskSet) []int {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := ts[idx[a]], ts[idx[b]]
		if ta.Deadline != tb.Deadline {
			return ta.Deadline < tb.Deadline
		}
		if ta.Crit != tb.Crit {
			return ta.Crit == mcs.HI
		}
		return ta.ID < tb.ID
	})
	order := make([]int, len(idx))
	for p, i := range idx {
		order[p] = ts[i].ID
	}
	return order
}

func orderToPriority(order []int) map[int]int {
	pr := make(map[int]int, len(order))
	for p, id := range order {
		pr[id] = p
	}
	return pr
}

// feasibleOrder checks every task under the given priority order (highest
// first).
func feasibleOrder(ts mcs.TaskSet, order []int, v Variant) bool {
	pos := make(map[int]int, len(order))
	for p, id := range order {
		pos[id] = p
	}
	for _, t := range ts {
		hp := hpSet(ts, func(u mcs.Task) bool { return pos[u.ID] < pos[t.ID] })
		if !taskFeasible(t, hp, v) {
			return false
		}
	}
	return true
}

// audsley assigns priorities bottom-up: for each priority level from lowest
// to highest, find some unassigned task that is schedulable at that level
// assuming all other unassigned tasks have higher priority.
func audsley(ts mcs.TaskSet, v Variant) Result {
	unassigned := make([]mcs.Task, len(ts))
	copy(unassigned, ts)
	// Deterministic candidate order: try the task with the largest
	// deadline first (most likely to tolerate the lowest level).
	sort.SliceStable(unassigned, func(i, j int) bool {
		if unassigned[i].Deadline != unassigned[j].Deadline {
			return unassigned[i].Deadline > unassigned[j].Deadline
		}
		return unassigned[i].ID < unassigned[j].ID
	})

	n := len(unassigned)
	priority := make(map[int]int, n)
	for level := n - 1; level >= 0; level-- {
		placed := false
		for i, cand := range unassigned {
			hp := make(mcs.TaskSet, 0, len(unassigned)-1)
			for j, u := range unassigned {
				if j != i {
					hp = append(hp, u)
				}
			}
			if taskFeasible(cand, hp, v) {
				priority[cand.ID] = level
				unassigned = append(unassigned[:i], unassigned[i+1:]...)
				placed = true
				break
			}
		}
		if !placed {
			return Result{}
		}
	}
	return Result{Schedulable: true, Priority: priority}
}

func hpSet(ts mcs.TaskSet, higher func(mcs.Task) bool) mcs.TaskSet {
	var hp mcs.TaskSet
	for _, u := range ts {
		if higher(u) {
			hp = append(hp, u)
		}
	}
	return hp
}

// taskFeasible checks one task against its higher-priority set.
func taskFeasible(t mcs.Task, hp mcs.TaskSet, v Variant) bool {
	rlo, ok := responseLO(t, hp)
	if !ok {
		return false
	}
	if !t.IsHC() {
		// LC tasks only need the LO-mode guarantee; they are dropped on a
		// mode switch.
		return true
	}
	switch v {
	case Max:
		return amcMax(t, hp, rlo)
	default:
		return amcRTB(t, hp, rlo)
	}
}

// responseLO solves R = C^L + Σ_{hp} ⌈R/T_j⌉·C_j^L by fixed point,
// failing once R exceeds the deadline.
func responseLO(t mcs.Task, hp mcs.TaskSet) (mcs.Ticks, bool) {
	return responseLOSeed(t, hp, t.CLo())
}

// responseLOSeed is responseLO warm-started at seed. The recurrence is
// monotone, and for any r ≤ lfp (the least fixed point) the next iterate
// satisfies r ≤ F(r) ≤ lfp — a strictly smaller iterate would lead to a
// fixed point below the least one — so iterating from ANY seed ≤ lfp
// converges to exactly the same response time as the cold start at C^L.
// Callers guarantee seed validity by only seeding from a response time
// converged against a subset of the current hp multiset (interference only
// grew, so the old fixed point is a lower bound on the new one).
func responseLOSeed(t mcs.Task, hp mcs.TaskSet, seed mcs.Ticks) (mcs.Ticks, bool) {
	r := seed
	for {
		next := t.CLo()
		for _, j := range hp {
			next += ceilDiv(r, j.Period) * j.CLo()
		}
		if next > t.Deadline {
			return 0, false
		}
		if next == r {
			return r, true
		}
		r = next
	}
}

// amcRTB solves R = C^H + Σ_{hpH} ⌈R/T⌉C^H + Σ_{hpL} ⌈R^LO/T⌉C^L.
func amcRTB(t mcs.Task, hp mcs.TaskSet, rlo mcs.Ticks) bool {
	_, ok := amcRTBSeed(t, hp, rlo, t.CHi())
	return ok
}

// amcRTBSeed is amcRTB warm-started at seed, returning the converged
// response time for use as a future seed. Seed validity follows the same
// monotone-fixed-point argument as responseLOSeed: the recurrence grows
// pointwise with both the hp multiset and rlo, so a response time converged
// against a subset hp (and its necessarily smaller rlo) never exceeds the
// current least fixed point.
func amcRTBSeed(t mcs.Task, hp mcs.TaskSet, rlo, seed mcs.Ticks) (mcs.Ticks, bool) {
	// LC interference is frozen at the LO-mode response time.
	var lcPart mcs.Ticks
	for _, j := range hp {
		if !j.IsHC() {
			lcPart += ceilDiv(rlo, j.Period) * j.CLo()
		}
	}
	r := seed
	for {
		next := t.CHi() + lcPart
		for _, j := range hp {
			if j.IsHC() {
				next += ceilDiv(r, j.Period) * j.CHi()
			}
		}
		if next > t.Deadline {
			return 0, false
		}
		if next == r {
			return r, true
		}
		r = next
	}
}

// amcMax implements the AMC-max recurrence: for each candidate switch
// instant s the response time R(s) solves
//
//	R(s) = C^H + Σ_{j∈hpL} (⌊s/T_j⌋+1)·C_j^L
//	     + Σ_{k∈hpH} [ M(k,s,R)·C_k^H + (⌈R/T_k⌉ − M(k,s,R))·C_k^L ]
//
// with M(k,s,t) = min( ⌈(t − s − (T_k − D_k))/T_k⌉ + 1, ⌈t/T_k⌉ ), clamped
// to ≥ 0 — the number of τ_k jobs that can execute at the HI budget after
// the switch. The result is max_s R(s) over LC release instants s < R^LO
// (the only points where the LC term changes), and the task is feasible iff
// that maximum is within the deadline.
func amcMax(t mcs.Task, hp mcs.TaskSet, rlo mcs.Ticks) bool {
	for _, s := range switchCandidates(hp, rlo) {
		if !amcMaxAt(t, hp, s) {
			return false
		}
	}
	return true
}

// switchCandidates enumerates s = 0 and the LC higher-priority release
// instants k·T_j strictly below rlo.
func switchCandidates(hp mcs.TaskSet, rlo mcs.Ticks) []mcs.Ticks {
	set := map[mcs.Ticks]bool{0: true}
	for _, j := range hp {
		if j.IsHC() {
			continue
		}
		for s := j.Period; s < rlo; s += j.Period {
			set[s] = true
		}
	}
	out := make([]mcs.Ticks, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func amcMaxAt(t mcs.Task, hp mcs.TaskSet, s mcs.Ticks) bool {
	var lcPart mcs.Ticks
	for _, j := range hp {
		if !j.IsHC() {
			lcPart += (s/j.Period + 1) * j.CLo()
		}
	}
	r := t.CHi()
	if r <= s { // the switch cannot happen after the busy period ends
		r = s + 1
	}
	for {
		next := t.CHi() + lcPart
		for _, k := range hp {
			if !k.IsHC() {
				continue
			}
			jobs := ceilDiv(r, k.Period)
			m := hiJobs(k, s, r)
			if m > jobs {
				m = jobs
			}
			next += m*k.CHi() + (jobs-m)*k.CLo()
		}
		if next > t.Deadline {
			return false
		}
		if next <= r {
			return true
		}
		r = next
	}
}

// hiJobs is M(k, s, t): jobs of τ_k released late enough to run at the HI
// budget in a busy window [0, t] with a switch at s. The inner ceiling must
// be a true signed ceiling — a switch far beyond the window yields zero HI
// jobs, not one.
func hiJobs(k mcs.Task, s, t mcs.Ticks) mcs.Ticks {
	num := t - s - (k.Period - k.Deadline)
	m := ceilSigned(num, k.Period) + 1
	if m < 0 {
		return 0
	}
	return m
}

// ceilSigned returns ⌈a/b⌉ for b > 0 and any sign of a.
func ceilSigned(a, b mcs.Ticks) mcs.Ticks {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0, with ⌈a/b⌉ = 0 for a ≤ 0.
func ceilDiv(a, b mcs.Ticks) mcs.Ticks {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Test is the partitioning-test adapter for AMC.
type Test struct {
	Opts Options
}

// Name implements the test interface. The priority policy is part of the
// name so that two AMC configurations never alias: verdict caches and
// by-name registries key on the name, and Audsley versus deadline-monotonic
// genuinely disagree on some task sets.
func (t Test) Name() string {
	if t.Opts.Policy == DeadlineMonotonic {
		return t.Opts.Variant.String() + "(dm)"
	}
	return t.Opts.Variant.String()
}

// Schedulable implements the test interface.
func (t Test) Schedulable(ts mcs.TaskSet) bool { return Analyze(ts, t.Opts).Schedulable }
