package amc

import (
	"slices"

	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
)

// Analyzer is the reusable per-core AMC engine. Against the stateless
// Analyze — which copies the task set, allocates a fresh hp set per
// candidate and runs every fixed point cold — it keeps, per core:
//
//   - memoized artifacts of the last certified-schedulable set: the task
//     values in analysis order (mem), the priority order that passed (pos)
//     and each task's converged LO / AMC-rtb response times (posLO/posHI);
//   - scratch buffers for hp sets, priority orders and switch-instant
//     candidates, so steady-state probes run allocation-free;
//   - two-sided fast-path filters (utilization rejects, the
//     rtb-implies-max accept) with counters.
//
// Every shortcut is verdict-preserving, not approximate:
//
//   - Utilization rejects: with constrained deadlines, Σ C^L/T > 1 makes
//     the LO fixed point of the lowest-priority task exceed its deadline
//     under EVERY priority order (R ≤ D ≤ T would force R·ΣU ≤ R), and
//     Σ_HC C^H/T > 1 does the same to the lowest-priority HC task in both
//     the rtb and max analyses (at switch instant s=0 the max recurrence
//     counts every HC job at C^H), so Audsley and deadline-monotonic
//     assignment must both fail.
//   - rtb ⇒ max: for the same task, hp set and R^LO, every term of the
//     AMC-max recurrence at any switch instant s < R^LO is bounded by the
//     corresponding AMC-rtb term (⌊s/T⌋+1 ≤ ⌈R^LO/T⌉ for the LC part,
//     M·C^H + (jobs−M)·C^L ≤ jobs·C^H for the HC part), and the max
//     iteration starts at max(C^H, s+1) ≤ R^rtb (R^rtb ≥ R^LO > s holds
//     because the rtb recurrence dominates the LO one). A converged R^rtb
//     is therefore a prefix point of every per-s iteration, which then
//     terminates at or below it — so an rtb pass certifies the max pass
//     without running it.
//   - Bottom insertion (Audsley): appending a task at the lowest priority
//     leaves every resident task's hp set unchanged, so if the newcomer is
//     feasible below the certified order the extended order is feasible —
//     and Audsley's algorithm, which finds an assignment whenever one
//     exists, must agree. An infeasible bottom slot decides nothing and
//     falls back to the full assignment search.
//   - Deadline-monotonic insertion: the order is forced, so only the
//     newcomer and the tasks below its slot need re-analysis; tasks above
//     keep bit-identical hp sets. Re-analyzed fixed points warm-start from
//     their previous converged values (valid lower bounds — their hp sets
//     only grew).
//
// The differential suite in internal/analysis/crosstest certifies verdict
// equality against the stateless test for all of this.
//
// An Analyzer is not safe for concurrent use.
type Analyzer struct {
	opts Options
	ctr  kernel.Counters

	// Memo of the last certified-schedulable set. valid gates the
	// incremental paths; seedOK additionally gates warm starts (response
	// times stop being fixed points when a task leaves, but the certified
	// order itself survives removals by sustainability).
	valid  bool
	seedOK bool
	mem    []mcs.Task  // certified set, analysis (slice) order
	pos    []int       // priority position → index into mem (0 = highest)
	posLO  []mcs.Ticks // converged LO response per position
	posHI  []mcs.Ticks // converged rtb response per position (0 = none)

	// Scratch.
	hpBuf   []mcs.Task
	unBuf   []mcs.Task
	dmBuf   []mcs.Task
	lvlTask []mcs.Task
	lvlLO   []mcs.Ticks
	lvlHI   []mcs.Ticks
	newLO   []mcs.Ticks
	newHI   []mcs.Ticks
	cands   []mcs.Ticks
	used    []bool
}

// NewAnalyzer implements kernel.Incremental for Test.
func (t Test) NewAnalyzer() kernel.Analyzer { return &Analyzer{opts: t.Opts} }

// Name implements kernel.Analyzer.
func (a *Analyzer) Name() string { return Test{Opts: a.opts}.Name() }

// Counters implements kernel.Analyzer.
func (a *Analyzer) Counters() *kernel.Counters { return &a.ctr }

// Invalidate implements kernel.Analyzer.
func (a *Analyzer) Invalidate() { a.valid, a.seedOK = false, false }

// Forget implements kernel.Analyzer: the removed task leaves the memo, the
// certified order survives (every remaining hp set shrank, and the analyses
// are sustainable under removal), the warm-start seeds do not (the stored
// response times are now upper bounds, not fixed points).
func (a *Analyzer) Forget(id int) {
	if !a.valid {
		return
	}
	j := -1
	for i := range a.mem {
		if a.mem[i].ID == id {
			j = i
			break
		}
	}
	if j < 0 {
		return
	}
	a.mem = append(a.mem[:j], a.mem[j+1:]...)
	w := 0
	for p, idx := range a.pos {
		if idx == j {
			continue
		}
		if idx > j {
			idx--
		}
		// Compact the response-time arrays in step with pos, so position p
		// keeps describing the same task. The values are still demoted to
		// non-seeds below (hp sets shrank, so they are upper bounds, not
		// fixed points), but alignment must survive for the next full run's
		// promote to rebuild from a consistent state.
		a.pos[w] = idx
		a.posLO[w] = a.posLO[p]
		a.posHI[w] = a.posHI[p]
		w++
	}
	a.pos = a.pos[:w]
	a.posLO = a.posLO[:w]
	a.posHI = a.posHI[:w]
	a.seedOK = false
}

// Schedulable implements kernel.Analyzer; the verdict is bit-identical to
// the stateless Analyze with the same Options.
func (a *Analyzer) Schedulable(ts mcs.TaskSet) bool {
	if len(ts) == 0 {
		return true
	}
	if a.fastReject(ts) {
		a.ctr.FastRejects++
		return false
	}
	if a.valid && kernel.PrefixExtends(ts, a.mem) {
		if a.opts.Policy == DeadlineMonotonic {
			// The incremental path promotes the carried posLO/posHI prefix
			// back into seed validity, so it is only sound while the stored
			// values are true fixed points. After a release (seedOK false)
			// the first probe must re-derive them with a full pass.
			if a.seedOK {
				return a.incrementalDM(ts)
			}
			return a.runFull(ts, false)
		}
		if a.bottomInsert(ts) {
			a.ctr.IncrementalHits++
			return true
		}
		// The newcomer does not fit below the certified order; only a full
		// Audsley pass (seeded at the bottom level) can decide.
		return a.runFull(ts, true)
	}
	return a.runFull(ts, false)
}

// fastReject applies the necessary utilization conditions. The proofs
// require constrained deadlines (D ≤ T); anything else falls through to the
// exact analysis. The 1e-9 margin absorbs float accumulation against the
// exact integer arithmetic of the response-time tests — the filter only
// fires when the true rational utilization is certainly above 1.
func (a *Analyzer) fastReject(ts mcs.TaskSet) bool {
	const margin = 1e-9
	var uLO, uHH float64
	for _, t := range ts {
		if t.Period <= 0 || t.Deadline <= 0 || t.Deadline > t.Period {
			return false
		}
		uLO += float64(t.CLo()) / float64(t.Period)
		if t.IsHC() {
			uHH += float64(t.CHi()) / float64(t.Period)
		}
	}
	return uLO > 1+margin || uHH > 1+margin
}

// bottomInsert tries the prefix-extend fast path: the new task at the
// lowest priority below the certified order. Only an accept decides.
func (a *Analyzer) bottomInsert(ts mcs.TaskSet) bool {
	x := ts[len(ts)-1]
	rlo, rhi, ok := a.taskFeasibleW(x, mcs.TaskSet(a.mem), 0, 0)
	if !ok {
		return false
	}
	a.mem = append(a.mem, x)
	a.pos = append(a.pos, len(a.mem)-1)
	a.posLO = append(a.posLO, rlo)
	a.posHI = append(a.posHI, rhi)
	return true
}

// incrementalDM decides a prefix-extended set under the forced
// deadline-monotonic order: tasks above the newcomer's slot keep their
// verdicts, the newcomer and everything below re-verify with warm seeds.
func (a *Analyzer) incrementalDM(ts mcs.TaskSet) bool {
	x := ts[len(ts)-1]
	p := 0
	for p < len(a.pos) && !dmLess(x, a.mem[a.pos[p]]) {
		p++
	}
	buf := a.dmBuf[:0]
	for q := 0; q < p; q++ {
		buf = append(buf, a.mem[a.pos[q]])
	}
	buf = append(buf, x)
	for q := p; q < len(a.pos); q++ {
		buf = append(buf, a.mem[a.pos[q]])
	}
	a.dmBuf = buf

	newLO := append(a.newLO[:0], a.posLO[:p]...)
	newHI := append(a.newHI[:0], a.posHI[:p]...)
	ok := true
	for q := p; q < len(buf); q++ {
		var sLO, sHI mcs.Ticks
		if a.seedOK && q > p {
			// buf[q] sat at position q-1 before the insertion.
			sLO, sHI = a.posLO[q-1], a.posHI[q-1]
		}
		rlo, rhi, feas := a.taskFeasibleW(buf[q], mcs.TaskSet(buf[:q]), sLO, sHI)
		if !feas {
			ok = false
			break
		}
		newLO = append(newLO, rlo)
		newHI = append(newHI, rhi)
	}
	a.newLO, a.newHI = newLO, newHI
	a.ctr.IncrementalHits++
	if !ok {
		return false
	}
	a.promote(ts, buf, newLO, newHI)
	return true
}

// runFull is the exact analysis with scratch buffers.
func (a *Analyzer) runFull(ts mcs.TaskSet, seeded bool) bool {
	a.ctr.ExactRuns++
	if a.opts.Policy == DeadlineMonotonic {
		return a.fullDM(ts)
	}
	return a.fullAudsley(ts, seeded)
}

// fullDM verifies the deadline-monotonic order from scratch.
func (a *Analyzer) fullDM(ts mcs.TaskSet) bool {
	buf := append(a.dmBuf[:0], ts...)
	a.dmBuf = buf
	insertionSort(buf, dmLess)
	newLO := a.newLO[:0]
	newHI := a.newHI[:0]
	ok := true
	for q := range buf {
		rlo, rhi, feas := a.taskFeasibleW(buf[q], mcs.TaskSet(buf[:q]), 0, 0)
		if !feas {
			ok = false
			break
		}
		newLO = append(newLO, rlo)
		newHI = append(newHI, rhi)
	}
	a.newLO, a.newHI = newLO, newHI
	if !ok {
		return false
	}
	a.promote(ts, buf, newLO, newHI)
	return true
}

// fullAudsley assigns priorities bottom-up exactly like the stateless
// audsley (same candidate order, same first-feasible choice), reusing
// scratch. With seeded set, bottom-level candidates warm-start from the
// memoized response times — valid there because the current set is a
// superset of the memo, so a candidate's bottom-level hp set contains its
// old one.
func (a *Analyzer) fullAudsley(ts mcs.TaskSet, seeded bool) bool {
	un := append(a.unBuf[:0], ts...)
	a.unBuf = un
	insertionSort(un, func(x, y mcs.Task) bool {
		if x.Deadline != y.Deadline {
			return x.Deadline > y.Deadline
		}
		return x.ID < y.ID
	})

	n := len(un)
	a.lvlTask = growTasks(a.lvlTask, n)
	a.lvlLO = growTicks(a.lvlLO, n)
	a.lvlHI = growTicks(a.lvlHI, n)
	for level := n - 1; level >= 0; level-- {
		placed := false
		for i := 0; i < len(un); i++ {
			cand := un[i]
			hp := append(a.hpBuf[:0], un[:i]...)
			hp = append(hp, un[i+1:]...)
			a.hpBuf = hp
			var sLO, sHI mcs.Ticks
			if seeded && a.seedOK && level == n-1 {
				sLO, sHI = a.seedFor(cand)
			}
			rlo, rhi, feas := a.taskFeasibleW(cand, mcs.TaskSet(hp), sLO, sHI)
			if feas {
				a.lvlTask[level], a.lvlLO[level], a.lvlHI[level] = cand, rlo, rhi
				un = append(un[:i], un[i+1:]...)
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	a.promote(ts, a.lvlTask[:n], a.lvlLO[:n], a.lvlHI[:n])
	return true
}

// seedFor returns the memoized response times of a task that is still
// resident in the memo with identical parameters, or zeros.
func (a *Analyzer) seedFor(t mcs.Task) (mcs.Ticks, mcs.Ticks) {
	for p, idx := range a.pos {
		if a.mem[idx] == t {
			return a.posLO[p], a.posHI[p]
		}
	}
	return 0, 0
}

// taskFeasibleW is taskFeasible with warm seeds, converged-value capture
// and the rtb-implies-max shortcut. Zero seeds mean cold starts.
func (a *Analyzer) taskFeasibleW(t mcs.Task, hp mcs.TaskSet, seedLO, seedHI mcs.Ticks) (rlo, rhi mcs.Ticks, ok bool) {
	s := t.CLo()
	if seedLO > s {
		s = seedLO
		a.ctr.WarmStarts++
	}
	rlo, ok = responseLOSeed(t, hp, s)
	if !ok {
		return 0, 0, false
	}
	if !t.IsHC() {
		return rlo, 0, true
	}
	sh := t.CHi()
	if seedHI > sh {
		sh = seedHI
		a.ctr.WarmStarts++
	}
	rhi, rtbOK := amcRTBSeed(t, hp, rlo, sh)
	if a.opts.Variant == Max {
		if rtbOK {
			a.ctr.FastAccepts++ // rtb ⇒ max: skip the switch-instant scan
			return rlo, rhi, true
		}
		return rlo, 0, a.amcMaxScratch(t, hp, rlo)
	}
	if !rtbOK {
		return rlo, 0, false
	}
	return rlo, rhi, true
}

// amcMaxScratch is amcMax with the switch-instant candidates collected in a
// reusable buffer instead of a map — same candidate set, same sorted scan
// order, no allocation in the steady state.
func (a *Analyzer) amcMaxScratch(t mcs.Task, hp mcs.TaskSet, rlo mcs.Ticks) bool {
	c := append(a.cands[:0], 0)
	for _, j := range hp {
		if j.IsHC() {
			continue
		}
		for s := j.Period; s < rlo; s += j.Period {
			c = append(c, s)
		}
	}
	slices.Sort(c)
	c = slices.Compact(c)
	a.cands = c
	for _, s := range c {
		if !amcMaxAt(t, hp, s) {
			return false
		}
	}
	return true
}

// promote records a certified analysis: ts (copied) becomes the memo,
// byPrio/los/his its priority order and response times. Position mapping
// matches tasks by value with a used-guard so even degenerate inputs with
// duplicate IDs keep a bijection.
func (a *Analyzer) promote(ts mcs.TaskSet, byPrio []mcs.Task, los, his []mcs.Ticks) {
	a.mem = append(a.mem[:0], ts...)
	a.used = growBools(a.used, len(a.mem))
	for i := range a.used {
		a.used[i] = false
	}
	a.pos = a.pos[:0]
	for _, t := range byPrio {
		for i := range a.mem {
			if !a.used[i] && a.mem[i] == t {
				a.used[i] = true
				a.pos = append(a.pos, i)
				break
			}
		}
	}
	if len(a.pos) != len(a.mem) {
		// Defensive: no bijection (cannot happen for valid inputs).
		a.valid, a.seedOK = false, false
		return
	}
	a.posLO = append(a.posLO[:0], los...)
	a.posHI = append(a.posHI[:0], his...)
	a.valid, a.seedOK = true, true
}

// dmLess is the deadline-monotonic comparator of dmOrder: deadline, then
// HC-first, then ID — a strict total order for unique IDs.
func dmLess(x, y mcs.Task) bool {
	if x.Deadline != y.Deadline {
		return x.Deadline < y.Deadline
	}
	if x.Crit != y.Crit {
		return x.Crit == mcs.HI
	}
	return x.ID < y.ID
}

// insertionSort sorts buf stably by less without allocating; the orders it
// produces are identical to sort.SliceStable with the same comparator.
func insertionSort(buf []mcs.Task, less func(a, b mcs.Task) bool) {
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && less(buf[j], buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
}

func growTasks(buf []mcs.Task, n int) []mcs.Task {
	if cap(buf) < n {
		return make([]mcs.Task, n)
	}
	return buf[:n]
}

func growTicks(buf []mcs.Ticks, n int) []mcs.Ticks {
	if cap(buf) < n {
		return make([]mcs.Ticks, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
