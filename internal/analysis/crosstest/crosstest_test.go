// Package crosstest holds properties that span several schedulability
// analyses: dominance relations between tests, agreement on degenerate
// inputs, and executable soundness checks that drive the runtime simulator
// with the exact artefacts (virtual deadlines, priorities) an analysis
// certified. These relations are what the paper's algorithm pairings rely
// on (e.g. "EY … relatively less efficient … than ECDF").
package crosstest

import (
	"math/rand"
	"testing"

	"mcsched/internal/analysis/amc"
	"mcsched/internal/analysis/ecdf"
	"mcsched/internal/analysis/edfvd"
	"mcsched/internal/analysis/ey"
	"mcsched/internal/mcs"
	"mcsched/internal/sim"
	"mcsched/internal/taskgen"
)

// drawSets generates n small uniprocessor task sets across the load range.
func drawSets(t *testing.T, n int, constrained bool) []mcs.TaskSet {
	t.Helper()
	var out []mcs.TaskSet
	for seed := int64(0); len(out) < n && seed < int64(4*n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		uhh := 0.2 + 0.6*rng.Float64()
		ulh := uhh * (0.3 + 0.6*rng.Float64())
		ull := 0.1 + 0.5*rng.Float64()
		cfg := taskgen.DefaultConfig(1, uhh, ulh, ull)
		cfg.NMin, cfg.NMax = 3, 8
		cfg.Constrained = constrained
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			continue
		}
		out = append(out, ts)
	}
	if len(out) < n {
		t.Fatalf("could only generate %d/%d sets", len(out), n)
	}
	return out
}

// TestECDFDominatesEYGenerated: per-set strict dominance — every EY-accepted
// set must be ECDF-accepted (ECDF runs the EY pass first and only adds
// restarts). Checked on implicit and constrained deadlines.
func TestECDFDominatesEYGenerated(t *testing.T) {
	for _, constrained := range []bool{false, true} {
		accepted := 0
		for _, ts := range drawSets(t, 60, constrained) {
			eyOK := ey.Schedulable(ts)
			ecdfOK := ecdf.Schedulable(ts)
			if eyOK && !ecdfOK {
				t.Fatalf("constrained=%v: EY accepted but ECDF rejected:\n%v", constrained, ts)
			}
			if eyOK {
				accepted++
			}
		}
		if accepted == 0 {
			t.Errorf("constrained=%v: EY accepted nothing; sweep uninformative", constrained)
		}
	}
}

// TestECDFAddsValueOverEY: across the sweep, ECDF must accept strictly more
// sets than EY (the restarts must help somewhere) — this is the gap the
// paper exploits by pairing its strategies with ECDF.
func TestECDFAddsValueOverEY(t *testing.T) {
	eyCount, ecdfCount := 0, 0
	for _, ts := range drawSets(t, 120, true) {
		if ey.Schedulable(ts) {
			eyCount++
		}
		if ecdf.Schedulable(ts) {
			ecdfCount++
		}
	}
	if ecdfCount < eyCount {
		t.Fatalf("ECDF accepted %d < EY %d — dominance broken in aggregate", ecdfCount, eyCount)
	}
	if ecdfCount == eyCount {
		t.Logf("note: ECDF added no acceptances on this sweep (%d each)", eyCount)
	}
}

// TestAMCMaxDominatesRTBGenerated: AMC-max accepts every AMC-rtb-accepted
// set (Baruah/Burns/Davis prove per-task response-time dominance).
func TestAMCMaxDominatesRTBGenerated(t *testing.T) {
	rtbOpts := amc.Options{Variant: amc.RTB, Policy: amc.Audsley}
	maxOpts := amc.Options{Variant: amc.Max, Policy: amc.Audsley}
	for _, ts := range drawSets(t, 80, true) {
		rtb := amc.Analyze(ts, rtbOpts).Schedulable
		max := amc.Analyze(ts, maxOpts).Schedulable
		if rtb && !max {
			t.Fatalf("AMC-rtb accepted but AMC-max rejected:\n%v", ts)
		}
	}
}

// TestAllAgreeOnLCOnlyImplicit: with no HC task and implicit deadlines,
// every MC test must degenerate to plain EDF/RM behaviour: EDF-VD, EY and
// ECDF accept exactly when utilization ≤ 1 (dbf equality for the dynamic
// tests); AMC accepts a superset-of-none (fixed-priority is weaker, it may
// reject, but must accept at utilization well below the RM bound).
func TestAllAgreeOnLCOnlyImplicit(t *testing.T) {
	light := mcs.TaskSet{mcs.NewLC(0, 2, 10), mcs.NewLC(1, 3, 15), mcs.NewLC(2, 1, 20)} // u=0.45
	full := mcs.TaskSet{mcs.NewLC(0, 5, 10), mcs.NewLC(1, 5, 10)}                       // u=1.0
	over := mcs.TaskSet{mcs.NewLC(0, 6, 10), mcs.NewLC(1, 5, 10)}                       // u=1.1

	for name, test := range map[string]func(mcs.TaskSet) bool{
		"EDF-VD": edfvd.Schedulable,
		"EY":     ey.Schedulable,
		"ECDF":   ecdf.Schedulable,
	} {
		if !test(light) {
			t.Errorf("%s rejected a 0.45-utilization LC-only set", name)
		}
		if !test(full) {
			t.Errorf("%s rejected a utilization-1.0 LC-only synchronous set", name)
		}
		if test(over) {
			t.Errorf("%s accepted an overloaded LC-only set", name)
		}
	}
	if !amc.Schedulable(light) {
		t.Error("AMC rejected a 0.45-utilization LC-only set")
	}
	if amc.Schedulable(over) {
		t.Error("AMC accepted an overloaded LC-only set")
	}
}

// TestNoTestAcceptsStructuralOverload: UHH > 1 on one core is infeasible for
// every algorithm (HI-mode demand alone exceeds the processor).
func TestNoTestAcceptsStructuralOverload(t *testing.T) {
	ts := mcs.TaskSet{
		mcs.NewHC(0, 10, 60, 100),
		mcs.NewHC(1, 10, 50, 100),
	} // UHH = 1.1
	for name, test := range map[string]func(mcs.TaskSet) bool{
		"EDF-VD": edfvd.Schedulable,
		"EY":     ey.Schedulable,
		"ECDF":   ecdf.Schedulable,
		"AMC":    amc.Schedulable,
	} {
		if test(ts) {
			t.Errorf("%s accepted UHH=1.1", name)
		}
	}
}

// TestEveryTestAcceptsTinyLoad: a single featherweight HC task passes every
// analysis, implicit or constrained.
func TestEveryTestAcceptsTinyLoad(t *testing.T) {
	for _, ts := range []mcs.TaskSet{
		{mcs.NewHC(0, 1, 2, 100)},
		{mcs.NewHCConstrained(0, 1, 2, 100, 50)},
	} {
		for name, test := range map[string]func(mcs.TaskSet) bool{
			"EY":   ey.Schedulable,
			"ECDF": ecdf.Schedulable,
			"AMC":  amc.Schedulable,
		} {
			if !test(ts) {
				t.Errorf("%s rejected a u^H=0.02 task (D=%d)", name, ts[0].Deadline)
			}
		}
	}
	if !edfvd.Schedulable(mcs.TaskSet{mcs.NewHC(0, 1, 2, 100)}) {
		t.Error("EDF-VD rejected a u^H=0.02 task")
	}
}

// TestECDFCertifiedDeadlinesSurviveSimulation drives the virtual-deadline
// EDF runtime with ECDF's own accepted assignment on constrained-deadline
// sets, under both the LO-steady and the all-overrun (HI-storm) scenarios.
// This is the executable form of the dbf test's guarantee.
func TestECDFCertifiedDeadlinesSurviveSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	checked := 0
	for _, ts := range drawSets(t, 60, true) {
		res := ecdf.Analyze(ts, ecdf.DefaultOptions())
		if !res.Schedulable {
			continue
		}
		checked++
		for _, sc := range []sim.Scenario{sim.LoSteady{}, sim.HiStorm{}} {
			r := sim.SimulateCore(ts, sim.Config{
				Horizon:  60000,
				Policy:   sim.VirtualDeadlineEDF,
				VD:       res.VD,
				Scenario: sc,
			})
			if !r.OK() {
				t.Fatalf("ECDF-certified set missed under %T: %v\nVD=%v\n%v",
					sc, r.Misses[0], res.VD, ts)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d ECDF acceptances exercised", checked)
	}
}

// TestAMCCertifiedPrioritiesSurviveSimulation drives the fixed-priority
// runtime with the Audsley order AMC certified, under LO-steady and
// HI-storm scenarios.
func TestAMCCertifiedPrioritiesSurviveSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	checked := 0
	for _, ts := range drawSets(t, 60, true) {
		res := amc.Analyze(ts, amc.DefaultOptions())
		if !res.Schedulable {
			continue
		}
		checked++
		for _, sc := range []sim.Scenario{sim.LoSteady{}, sim.HiStorm{}} {
			r := sim.SimulateCore(ts, sim.Config{
				Horizon:    60000,
				Policy:     sim.FixedPriority,
				Priorities: res.Priority,
				Scenario:   sc,
			})
			if !r.OK() {
				t.Fatalf("AMC-certified set missed under %T: %v\nprio=%v\n%v",
					sc, r.Misses[0], res.Priority, ts)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d AMC acceptances exercised", checked)
	}
}

// TestEDFVDXSurvivesSimulation drives the EDF-VD runtime with the computed
// scaling factor on implicit-deadline sets.
func TestEDFVDXSurvivesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	checked := 0
	for _, ts := range drawSets(t, 60, false) {
		res := edfvd.Analyze(ts)
		if !res.Schedulable {
			continue
		}
		checked++
		for _, sc := range []sim.Scenario{sim.LoSteady{}, sim.HiStorm{}} {
			r := sim.SimulateCore(ts, sim.Config{
				Horizon:  60000,
				Policy:   sim.VirtualDeadlineEDF,
				VD:       sim.VDFromX(ts, res.X),
				Scenario: sc,
			})
			if !r.OK() {
				t.Fatalf("EDF-VD-certified set missed under %T (x=%.3f): %v\n%v",
					sc, res.X, r.Misses[0], ts)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d EDF-VD acceptances exercised", checked)
	}
}
