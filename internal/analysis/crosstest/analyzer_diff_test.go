package crosstest

import (
	"math/rand"
	"testing"

	"mcsched/internal/analysis/amc"
	"mcsched/internal/analysis/ecdf"
	"mcsched/internal/analysis/edf"
	"mcsched/internal/analysis/edfvd"
	"mcsched/internal/analysis/ey"
	"mcsched/internal/analysis/kernel"
	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

// analyzerFamilies enumerates every incremental analysis engine under test,
// paired with its stateless oracle. All five families (AMC in all three
// configurations, EDF-VD, EY, ECDF and the dbf-based plain-EDF tests) must
// produce bit-identical verdicts.
func analyzerFamilies() []kernel.Incremental {
	return []kernel.Incremental{
		edfvd.Test{},
		ey.Test{Opts: ey.DefaultOptions()},
		ecdf.Test{Opts: ecdf.DefaultOptions()},
		amc.Test{Opts: amc.DefaultOptions()},
		amc.Test{Opts: amc.Options{Variant: amc.RTB, Policy: amc.Audsley}},
		amc.Test{Opts: amc.Options{Variant: amc.Max, Policy: amc.DeadlineMonotonic}},
		edf.Test{Demand: true},
		edf.Test{Demand: false},
	}
}

// TestAnalyzerDifferentialDirect feeds each analyzer a stream of unrelated
// random task sets — no incremental structure at all, every call breaks the
// memo prefix — and asserts verdict equality with the stateless test on
// every one. This exercises the fast-path filters and the cold exact
// kernels.
func TestAnalyzerDifferentialDirect(t *testing.T) {
	for _, test := range analyzerFamilies() {
		test := test
		t.Run(test.Name(), func(t *testing.T) {
			t.Parallel()
			an := test.NewAnalyzer()
			constrained := test.Name() != "EDF-VD"
			sets := drawSets(t, 80, constrained)
			for i, ts := range sets {
				want := test.Schedulable(ts)
				got := an.Schedulable(ts)
				if got != want {
					t.Fatalf("set %d: analyzer=%v stateless=%v for:\n%v", i, got, want, ts)
				}
				// Immediately re-analyzing the same set must agree too (the
				// memo now matches it exactly on accepts).
				if again := an.Schedulable(ts); again != want {
					t.Fatalf("set %d: re-analysis flipped %v -> %v", i, want, again)
				}
			}
			ctr := an.Counters()
			if ctr.Total() == 0 {
				t.Error("analyzer counted no decisions")
			}
		})
	}
}

// TestAnalyzerDifferentialSequences drives each analyzer exactly like the
// admission hot path drives it: one analyzer models one core, tasks are
// admitted (probe, commit on accept) and released at random, and after
// every single probe the verdict is compared against the stateless test on
// the same candidate set. This exercises the incremental paths — bottom
// insertion, deadline-monotonic partial re-verification, warm-started fixed
// points — and their interaction with Forget.
func TestAnalyzerDifferentialSequences(t *testing.T) {
	for _, test := range analyzerFamilies() {
		test := test
		t.Run(test.Name(), func(t *testing.T) {
			t.Parallel()
			constrained := test.Name() != "EDF-VD"
			for trial := 0; trial < 6; trial++ {
				an := test.NewAnalyzer()
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				var resident mcs.TaskSet
				nextID := 0
				probes := 0

				for round := 0; round < 3; round++ {
					cfg := taskgen.DefaultConfig(1, 0.4+0.3*rng.Float64(),
						0.2+0.2*rng.Float64(), 0.2+0.3*rng.Float64())
					cfg.NMin, cfg.NMax = 3, 10
					cfg.Constrained = constrained
					ts, err := taskgen.Generate(rng, cfg)
					if err != nil {
						continue
					}
					for _, task := range ts {
						task.ID = nextID
						nextID++
						// Occasionally release a resident task first.
						if len(resident) > 0 && rng.Intn(4) == 0 {
							i := rng.Intn(len(resident))
							an.Forget(resident[i].ID)
							resident = append(resident[:i], resident[i+1:]...)
						}
						cand := append(resident.Clone(), task)
						want := test.Schedulable(cand)
						got := an.Schedulable(cand)
						probes++
						if got != want {
							t.Fatalf("trial %d probe %d: analyzer=%v stateless=%v for:\n%v",
								trial, probes, got, want, cand)
						}
						if want {
							resident = append(resident, task)
						}
					}
				}
				if probes == 0 {
					t.Fatal("sequence probed nothing; trial uninformative")
				}
			}
		})
	}
}

// TestAnalyzerForgetSeedRegression is the directed regression for a seed
// corruption found in review: Forget used to truncate the memoized
// response-time arrays out of alignment with the priority order, and the
// deadline-monotonic incremental path then promoted the stale prefix back
// into seed validity, warm-starting a later fixed point from a value above
// its true least fixed point and rejecting a schedulable set. The sequence
// needs release-then-admit-below-then-admit-above, which random traffic
// rarely produces.
func TestAnalyzerForgetSeedRegression(t *testing.T) {
	mk := func(id int, c, tt, d mcs.Ticks) mcs.Task { return mcs.NewLCConstrained(id, c, tt, d) }
	taskA := mk(1, 1, 9, 6)
	taskV := mk(2, 6, 12, 7)
	taskY := mk(3, 1, 12, 8)
	taskW := mk(4, 1, 20, 20)
	taskZ := mk(5, 4, 6, 5)

	for _, test := range []kernel.Incremental{
		amc.Test{Opts: amc.Options{Variant: amc.RTB, Policy: amc.DeadlineMonotonic}},
		amc.Test{Opts: amc.Options{Variant: amc.Max, Policy: amc.DeadlineMonotonic}},
		amc.Test{Opts: amc.DefaultOptions()},
	} {
		an := test.NewAnalyzer()
		resident := mcs.TaskSet{}
		step := func(task mcs.Task) {
			t.Helper()
			cand := append(resident.Clone(), task)
			want := test.Schedulable(cand)
			if got := an.Schedulable(cand); got != want {
				t.Fatalf("%s: admit %d: analyzer=%v stateless=%v for:\n%v",
					test.Name(), task.ID, got, want, cand)
			}
			if want {
				resident = append(resident, task)
			}
		}
		step(taskA)
		step(taskV)
		step(taskY)
		an.Forget(taskV.ID)
		for i, r := range resident {
			if r.ID == taskV.ID {
				resident = append(resident[:i], resident[i+1:]...)
				break
			}
		}
		step(taskW) // slots below everything (largest deadline)
		step(taskZ) // slots above everything (smallest deadline)
	}
}

// TestAnalyzerDifferentialReleaseHeavy hammers the Forget interaction:
// small pools, every other operation a release, and task deadlines drawn so
// newcomers land above, between and below the residents in priority order.
func TestAnalyzerDifferentialReleaseHeavy(t *testing.T) {
	for _, test := range analyzerFamilies() {
		test := test
		t.Run(test.Name(), func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 8; trial++ {
				an := test.NewAnalyzer()
				rng := rand.New(rand.NewSource(int64(9000 + trial)))
				var resident mcs.TaskSet
				for i := 0; i < 60; i++ {
					if len(resident) > 0 && rng.Intn(2) == 0 {
						j := rng.Intn(len(resident))
						an.Forget(resident[j].ID)
						resident = append(resident[:j], resident[j+1:]...)
						continue
					}
					period := mcs.Ticks(8 + rng.Intn(93))
					d := period
					if test.Name() != "EDF-VD" {
						d = period/2 + mcs.Ticks(rng.Intn(int(period/2)+1))
						if d <= 0 {
							d = 1
						}
					}
					cl := 1 + mcs.Ticks(rng.Intn(int(d/3+1)))
					var task mcs.Task
					if rng.Intn(2) == 0 {
						ch := cl + mcs.Ticks(rng.Intn(int(d-cl)+1))
						task = mcs.NewHCConstrained(i+1000, cl, ch, period, d)
					} else {
						task = mcs.NewLCConstrained(i+1000, cl, period, d)
					}
					cand := append(resident.Clone(), task)
					want := test.Schedulable(cand)
					if got := an.Schedulable(cand); got != want {
						t.Fatalf("trial %d op %d: analyzer=%v stateless=%v for:\n%v",
							trial, i, got, want, cand)
					}
					if want {
						resident = append(resident, task)
					}
				}
			}
		})
	}
}

// TestAnalyzerForgetUnknownID: pruning an ID the analyzer never saw must be
// a no-op, and Invalidate must leave the analyzer functional.
func TestAnalyzerForgetUnknownID(t *testing.T) {
	for _, test := range analyzerFamilies() {
		an := test.NewAnalyzer()
		ts := mcs.TaskSet{mcs.NewHC(1, 1, 2, 10), mcs.NewLC(2, 1, 12)}
		want := test.Schedulable(ts)
		if got := an.Schedulable(ts); got != want {
			t.Fatalf("%s: analyzer=%v stateless=%v", test.Name(), got, want)
		}
		an.Forget(99)
		an.Invalidate()
		if got := an.Schedulable(ts); got != want {
			t.Fatalf("%s after Invalidate: analyzer=%v stateless=%v", test.Name(), got, want)
		}
	}
}

// TestAnalyzerNamesMatch: an analyzer must report its family's name, since
// verdict caches and registries key on it.
func TestAnalyzerNamesMatch(t *testing.T) {
	for _, test := range analyzerFamilies() {
		if got := test.NewAnalyzer().Name(); got != test.Name() {
			t.Errorf("analyzer name %q != test name %q", got, test.Name())
		}
	}
}

// TestAnalyzerFilterCounters asserts the headline filters actually fire on
// sets built to trigger them, so the /v1/stats counters are not
// dead-on-arrival.
func TestAnalyzerFilterCounters(t *testing.T) {
	// Overload: LO utilization far above 1 on valid constrained tasks.
	overload := make(mcs.TaskSet, 0, 8)
	for i := 0; i < 8; i++ {
		overload = append(overload, mcs.NewLC(i, 3, 10))
	}
	// Trivial: one light LC task (density accept for the demand families).
	light := mcs.TaskSet{mcs.NewLC(0, 1, 100)}

	for _, test := range analyzerFamilies() {
		an := test.NewAnalyzer()
		if got, want := an.Schedulable(overload), test.Schedulable(overload); got != want {
			t.Fatalf("%s overload: analyzer=%v stateless=%v", test.Name(), got, want)
		}
		if got, want := an.Schedulable(light), test.Schedulable(light); got != want {
			t.Fatalf("%s light: analyzer=%v stateless=%v", test.Name(), got, want)
		}
		ctr := an.Counters()
		if ctr.FastRejects == 0 {
			t.Errorf("%s: overloaded set did not trip the fast reject (counters %+v)", test.Name(), *ctr)
		}
	}

	// The AMC-max analyzer must take the rtb-implies-max shortcut on an
	// easy HC set.
	an := amc.Test{Opts: amc.DefaultOptions()}.NewAnalyzer()
	easy := mcs.TaskSet{mcs.NewHC(0, 1, 2, 50), mcs.NewHC(1, 2, 4, 80)}
	if !an.Schedulable(easy) {
		t.Fatal("easy HC set rejected")
	}
	if an.Counters().FastAccepts == 0 {
		t.Errorf("AMC-max: no rtb-implies-max fast accept on an easy set (counters %+v)", *an.Counters())
	}
}

// TestAnalyzerWarmStartsFire: growing one core task by task must hit each
// family's warm-start path — memoized response times for AMC, cached sum
// folds for EDF-VD and utilization EDF, cached curves and horizon folds
// for the demand families — while every verdict stays bit-identical to the
// stateless test. Each stream is built so probes reach the family's exact
// (or warm-counted) path rather than being fully filter-resolved.
func TestAnalyzerWarmStartsFire(t *testing.T) {
	// Constrained-deadline LC task for the EDF demand stream: density
	// Σ C/D crosses 1 after a few tasks (staggered deadlines 2, 3, 4, …)
	// while utilization stays at 0.1 per task, so probes fall through the
	// filters into the seeded QPA path and remain schedulable throughout.
	edfDemandTask := func(i int) mcs.Task {
		task := mcs.NewLC(i, 1, 10)
		task.Deadline = mcs.Ticks(2 + i)
		return task
	}
	cases := []struct {
		name            string
		test            kernel.Incremental
		task            func(i int) mcs.Task
		steps           int
		wantIncremental bool
	}{
		{
			// Decreasing periods: each newcomer slots ABOVE the residents in
			// the deadline-monotonic order, forcing re-verification of
			// everything below it — which is where the warm seeds apply.
			name:  "AMC-rtb-DM",
			test:  amc.Test{Opts: amc.Options{Variant: amc.RTB, Policy: amc.DeadlineMonotonic}},
			task:  func(i int) mcs.Task { return mcs.NewHC(i, 1, 2, mcs.Ticks(80-3*i)) },
			steps: 12, wantIncremental: true,
		},
		{
			name:  "EDF-VD",
			test:  edfvd.Test{},
			task:  func(i int) mcs.Task { return mcs.NewHC(i, 1, 2, 100) },
			steps: 10, wantIncremental: true,
		},
		{
			// HC tasks keep the density fast-accept off; utilizations stay
			// under 1 so the exact demand analysis runs on every probe.
			name:  "EY",
			test:  ey.Test{Opts: ey.DefaultOptions()},
			task:  func(i int) mcs.Task { return mcs.NewHC(i, 2, 4, 40) },
			steps: 9,
		},
		{
			name:  "ECDF",
			test:  ecdf.Test{Opts: ecdf.DefaultOptions()},
			task:  func(i int) mcs.Task { return mcs.NewHC(i, 2, 4, 40) },
			steps: 9,
		},
		{
			name: "EDF-demand",
			test: edf.Test{Demand: true},
			task: edfDemandTask, steps: 8,
		},
		{
			name:  "EDF-util",
			test:  edf.Test{Demand: false},
			task:  func(i int) mcs.Task { return mcs.NewLC(i, 1, 10) },
			steps: 8, wantIncremental: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			an := tc.test.NewAnalyzer()
			var resident mcs.TaskSet
			for i := 0; i < tc.steps; i++ {
				task := tc.task(i)
				cand := append(resident.Clone(), task)
				want := tc.test.Schedulable(cand)
				if got := an.Schedulable(cand); got != want {
					t.Fatalf("step %d: analyzer=%v stateless=%v", i, got, want)
				}
				if want {
					resident = append(resident, task)
				}
			}
			ctr := an.Counters()
			if ctr.WarmStarts == 0 {
				t.Errorf("no warm starts over a growing core (counters %+v)", *ctr)
			}
			if tc.wantIncremental && ctr.IncrementalHits == 0 {
				t.Errorf("no incremental decisions over a growing core (counters %+v)", *ctr)
			}
			if len(resident) == 0 {
				t.Error("stream admitted nothing; sweep uninformative")
			}
		})
	}
}

// TestAnalyzerWarmStartsSurviveRelease: the demand-bound memos must stay
// valid across removals (the Assigner compacts order-preservingly and the
// analyzers refold), so an admit–release–admit cycle keeps warm-starting
// instead of falling back cold — with verdicts still matching the
// stateless test after every mutation.
func TestAnalyzerWarmStartsSurviveRelease(t *testing.T) {
	streams := []struct {
		name string
		test kernel.Incremental
		task func(i int) mcs.Task
	}{
		{"EDF-VD", edfvd.Test{}, func(i int) mcs.Task { return mcs.NewHC(i, 1, 2, 100) }},
		{"EY", ey.Test{Opts: ey.DefaultOptions()}, func(i int) mcs.Task { return mcs.NewHC(i, 2, 4, 40) }},
		{"ECDF", ecdf.Test{Opts: ecdf.DefaultOptions()}, func(i int) mcs.Task { return mcs.NewHC(i, 2, 4, 40) }},
	}
	for _, tc := range streams {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			an := tc.test.NewAnalyzer()
			var resident mcs.TaskSet
			admit := func(i int) {
				t.Helper()
				task := tc.task(i)
				cand := append(resident.Clone(), task)
				want := tc.test.Schedulable(cand)
				if got := an.Schedulable(cand); got != want {
					t.Fatalf("admit %d: analyzer=%v stateless=%v", i, got, want)
				}
				if want {
					resident = append(resident, task)
				}
			}
			for i := 0; i < 6; i++ {
				admit(i)
			}
			// Release from the middle, then keep admitting: the post-release
			// probes must still be warm.
			victim := resident[2].ID
			for j := range resident {
				if resident[j].ID == victim {
					resident = append(resident[:j], resident[j+1:]...)
					break
				}
			}
			an.Forget(victim)
			before := an.Counters().WarmStarts
			for i := 6; i < 10; i++ {
				admit(i)
			}
			if after := an.Counters().WarmStarts; after == before {
				t.Errorf("no warm starts after a release (counters %+v)", *an.Counters())
			}
		})
	}
}

// TestAnalyzerScratchIndependence: interleaving probes of DIFFERENT cores
// through DIFFERENT analyzers of the same family must not cross-contaminate
// (each analyzer owns its scratch and memo).
func TestAnalyzerScratchIndependence(t *testing.T) {
	test := amc.Test{Opts: amc.DefaultOptions()}
	const cores = 3
	ans := make([]kernel.Analyzer, cores)
	residents := make([]mcs.TaskSet, cores)
	for k := range ans {
		ans[k] = test.NewAnalyzer()
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		k := rng.Intn(cores)
		tticks := mcs.Ticks(10 + rng.Intn(90))
		cl := 1 + mcs.Ticks(rng.Intn(int(tticks/5+1)))
		ch := cl + mcs.Ticks(rng.Intn(int(tticks/4+1)))
		if ch > tticks {
			ch = tticks
		}
		task := mcs.NewHC(i, cl, ch, tticks)
		cand := append(residents[k].Clone(), task)
		want := test.Schedulable(cand)
		if got := ans[k].Schedulable(cand); got != want {
			t.Fatalf("probe %d core %d: analyzer=%v stateless=%v", i, k, got, want)
		}
		if want {
			residents[k] = append(residents[k], task)
		}
	}
	admitted := 0
	for _, r := range residents {
		admitted += len(r)
	}
	if admitted == 0 {
		t.Error("no core admitted anything; sweep uninformative")
	}
}
