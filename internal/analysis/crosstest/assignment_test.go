package crosstest

import (
	"testing"

	"mcsched/internal/analysis/ecdf"
	"mcsched/internal/analysis/ey"
	"mcsched/internal/mcs"
)

// checkAssignment verifies the structural contract of a virtual-deadline
// assignment: every HC task has an entry in [C^L, D], no LC task has one.
func checkAssignment(t *testing.T, name string, ts mcs.TaskSet, vd map[int]mcs.Ticks) {
	t.Helper()
	for _, task := range ts {
		d, ok := vd[task.ID]
		if !task.IsHC() {
			if ok {
				t.Fatalf("%s assigned a virtual deadline to LC task %d", name, task.ID)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s missing virtual deadline for HC task %d", name, task.ID)
		}
		if d < task.CLo() || d > task.Deadline {
			t.Fatalf("%s: task %d VD %d outside [C^L=%d, D=%d]",
				name, task.ID, d, task.CLo(), task.Deadline)
		}
	}
}

// TestEYAssignmentContract: every EY acceptance carries a well-formed
// assignment, and the assignment re-verifies against the mode tests it was
// derived from.
func TestEYAssignmentContract(t *testing.T) {
	checked := 0
	for _, ts := range drawSets(t, 80, true) {
		r := ey.Analyze(ts, ey.DefaultOptions())
		if !r.Schedulable {
			continue
		}
		checked++
		checkAssignment(t, "EY", ts, r.VD)
		a := ey.Assignment(r.VD)
		if !ey.LOFeasible(ts, a) {
			t.Fatalf("EY-accepted assignment fails its own LO test: %v\n%v", r.VD, ts)
		}
		if _, ok := ey.HIFeasible(ts, a); !ok {
			t.Fatalf("EY-accepted assignment fails its own HI test: %v\n%v", r.VD, ts)
		}
	}
	if checked < 15 {
		t.Fatalf("only %d EY acceptances exercised", checked)
	}
}

// TestECDFAssignmentContract: the same contract for ECDF, whose assignment
// may come from a scale-factor restart.
func TestECDFAssignmentContract(t *testing.T) {
	checked, restarted := 0, 0
	for _, ts := range drawSets(t, 120, true) {
		r := ecdf.Analyze(ts, ecdf.DefaultOptions())
		if !r.Schedulable {
			continue
		}
		checked++
		if r.Restarts > 0 {
			restarted++
		}
		checkAssignment(t, "ECDF", ts, r.VD)
		a := ey.Assignment(r.VD)
		if !ey.LOFeasible(ts, a) {
			t.Fatalf("ECDF-accepted assignment fails LO: %v\n%v", r.VD, ts)
		}
		if _, ok := ey.HIFeasible(ts, a); !ok {
			t.Fatalf("ECDF-accepted assignment fails HI: %v\n%v", r.VD, ts)
		}
	}
	if checked < 15 {
		t.Fatalf("only %d ECDF acceptances exercised", checked)
	}
	t.Logf("ECDF acceptances: %d (of which %d needed restarts)", checked, restarted)
}

// TestImplicitDeadlineAssignments: on implicit-deadline sets the same
// contracts hold (virtual deadlines may equal the period).
func TestImplicitDeadlineAssignments(t *testing.T) {
	for _, ts := range drawSets(t, 40, false) {
		if r := ey.Analyze(ts, ey.DefaultOptions()); r.Schedulable {
			checkAssignment(t, "EY", ts, r.VD)
		}
		if r := ecdf.Analyze(ts, ecdf.DefaultOptions()); r.Schedulable {
			checkAssignment(t, "ECDF", ts, r.VD)
		}
	}
}
