package dbf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcsched/internal/mcs"
)

func TestStepValue(t *testing.T) {
	s := Step{C: 3, D: 10, T: 7}
	cases := []struct {
		l    mcs.Ticks
		want mcs.Ticks
	}{
		{0, 0}, {9, 0}, {10, 3}, {16, 3}, {17, 6}, {24, 9}, {100, 3 * 13},
	}
	for _, c := range cases {
		if got := s.Value(c.l); got != c.want {
			t.Errorf("Value(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestStepPrevKink(t *testing.T) {
	s := Step{C: 3, D: 10, T: 7}
	cases := []struct {
		l    mcs.Ticks
		want mcs.Ticks
	}{
		{10, -1}, {11, 10}, {17, 10}, {18, 17}, {24, 17}, {25, 24},
	}
	for _, c := range cases {
		if got := s.PrevKink(c.l); got != c.want {
			t.Errorf("PrevKink(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestSawtoothValue(t *testing.T) {
	// CL=2, CH=5, D=10, VD=6, T=10 → offset 4.
	s := Sawtooth{CL: 2, CH: 5, D: 10, VD: 6, T: 10}
	cases := []struct {
		l    mcs.Ticks
		want mcs.Ticks
	}{
		{0, 0}, {3, 0},
		{4, 3},  // q=0: CH − CL = 3
		{5, 4},  // ramp
		{6, 5},  // ramp end (r = CL)
		{13, 5}, // flat
		{14, 8}, // next jump: 2·CH − CL
		{16, 10},
		{23, 10},
		{24, 13},
	}
	for _, c := range cases {
		if got := s.Value(c.l); got != c.want {
			t.Errorf("Value(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestSawtoothPrevKink(t *testing.T) {
	s := Sawtooth{CL: 2, CH: 5, D: 10, VD: 6, T: 10}
	// Kinks: 4 (jump), 6 (ramp end), 14, 16, 24, 26, …
	cases := []struct {
		l    mcs.Ticks
		want mcs.Ticks
	}{
		{4, -1}, {5, 4}, {6, 4}, {7, 6}, {14, 6}, {15, 14}, {16, 14}, {17, 16}, {24, 16}, {25, 24},
	}
	for _, c := range cases {
		if got := s.PrevKink(c.l); got != c.want {
			t.Errorf("PrevKink(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

// Property: PrevKink never misses a behaviour change — between a point l
// and its PrevKink the curve must be affine (constant second differences on
// interior integer points), which is exactly what QPA's soundness argument
// needs. PrevKink must also return a strictly smaller point, and iterating
// it must strictly descend.
func TestPrevKinkAffineBetweenKinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		c := randomCurve(rng)
		const L = 200
		for l := mcs.Ticks(1); l <= L; l++ {
			k := c.PrevKink(l)
			if k >= l {
				t.Fatalf("curve %+v: PrevKink(%d) = %d not strictly below", c, l, k)
			}
			// Interior triples (p−1, p, p+1) with k < p−1 and p+1 < l must
			// have matching first differences.
			for p := k + 2; p+1 < l; p++ {
				if p-1 <= k {
					continue
				}
				d1 := c.Value(p) - c.Value(p-1)
				d2 := c.Value(p+1) - c.Value(p)
				if d1 != d2 {
					t.Fatalf("curve %+v: not affine on (%d,%d): kink at %d missed (d1=%d d2=%d)",
						c, k, l, p, d1, d2)
				}
			}
		}
		// Iterating PrevKink strictly descends to -1.
		seen := 0
		for p := c.PrevKink(L); p >= 0; p = c.PrevKink(p) {
			seen++
			if seen > 1000 {
				t.Fatalf("curve %+v: PrevKink chain does not terminate", c)
			}
		}
	}
}

func randomCurve(rng *rand.Rand) Curve {
	T := mcs.Ticks(2 + rng.Intn(30))
	if rng.Intn(2) == 0 {
		D := mcs.Ticks(1 + rng.Intn(int(T)))
		C := mcs.Ticks(1 + rng.Intn(int(D)))
		return Step{C: C, D: D, T: T}
	}
	D := mcs.Ticks(1 + rng.Intn(int(T)))
	CH := mcs.Ticks(1 + rng.Intn(int(D)))
	CL := mcs.Ticks(1 + rng.Intn(int(CH)))
	VD := CL + mcs.Ticks(rng.Intn(int(D-CL)+1))
	return Sawtooth{CL: CL, CH: CH, D: D, VD: VD, T: T}
}

// Property: both curve families are nondecreasing.
func TestCurvesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		c := randomCurve(rng)
		prev := mcs.Ticks(0)
		for l := mcs.Ticks(0); l < 300; l++ {
			v := c.Value(l)
			if v < prev {
				t.Fatalf("curve %+v decreases at %d: %d < %d", c, l, v, prev)
			}
			prev = v
		}
	}
}

// Property: QPA agrees with the exhaustive oracle on random curve sums.
func TestQPAMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(5)
		var sum Sum
		for i := 0; i < n; i++ {
			sum = append(sum, randomCurve(rng))
		}
		L := mcs.Ticks(1 + rng.Intn(400))
		_, wantOK := Exhaustive(sum, L)
		gotOK := QPA(sum, L)
		if gotOK != wantOK {
			t.Fatalf("QPA=%v exhaustive=%v for %d curves, L=%d: %+v", gotOK, wantOK, n, L, sum)
		}
		if w, ok := QPAWitness(sum, L); !ok {
			if sum.Value(w) <= w {
				t.Fatalf("witness %d is not a violation", w)
			}
		}
	}
}

func TestQPAEmptyAndTrivial(t *testing.T) {
	if !QPA(Sum{}, 1000) {
		t.Error("empty demand rejected")
	}
	if !QPA(Step{C: 1, D: 1, T: 10}, 0) {
		t.Error("L=0 rejected")
	}
	// Demand exactly equal to supply at every deadline: schedulable.
	if !QPA(Step{C: 10, D: 10, T: 10}, 1000) {
		t.Error("tight utilization-1 step rejected (demand == supply at kinks)")
	}
	// And one unit over.
	if QPA(Step{C: 11, D: 10, T: 10}, 1000) {
		t.Error("overloaded step accepted")
	}
}

func TestHorizonLO(t *testing.T) {
	steps := []Step{{C: 1, D: 5, T: 10}, {C: 2, D: 8, T: 10}}
	L, ok := HorizonLO(steps)
	if !ok || L <= 0 {
		t.Fatalf("HorizonLO = %d, %v", L, ok)
	}
	// Soundness: beyond L the demand never exceeds supply (spot check).
	sum := Sum{steps[0], steps[1]}
	for l := L; l < L+500; l++ {
		if sum.Value(l) > l {
			t.Fatalf("demand exceeds supply at %d beyond horizon %d", l, L)
		}
	}
	if _, ok := HorizonLO([]Step{{C: 10, D: 10, T: 10}, {C: 1, D: 2, T: 10}}); ok {
		t.Error("over-utilized step set got a horizon")
	}
}

func TestHorizonHI(t *testing.T) {
	saws := []Sawtooth{
		{CL: 2, CH: 5, D: 10, VD: 6, T: 20},
		{CL: 1, CH: 3, D: 15, VD: 4, T: 30},
	}
	L, ok := HorizonHI(saws)
	if !ok || L <= 0 {
		t.Fatalf("HorizonHI = %d, %v", L, ok)
	}
	sum := Sum{saws[0], saws[1]}
	for l := L; l < L+500; l++ {
		if sum.Value(l) > l {
			t.Fatalf("demand exceeds supply at %d beyond horizon %d", l, L)
		}
	}
	// Utilization exactly 1: the hyperperiod bound applies and QPA must
	// reject (demand 5 in an interval of length 4).
	tight := Sawtooth{CL: 5, CH: 10, D: 10, VD: 6, T: 10}
	if L, ok := HorizonHI([]Sawtooth{tight}); !ok {
		t.Error("utilization-1 sawtooth got no periodic horizon")
	} else if QPA(Sum{tight}, L) {
		t.Error("infeasible utilization-1 sawtooth accepted")
	}
	// Utilization above 1: no horizon exists.
	if _, ok := HorizonHI([]Sawtooth{tight, {CL: 1, CH: 2, D: 8, VD: 4, T: 8}}); ok {
		t.Error("over-utilized sawtooth set got a horizon")
	}
	if L, ok := HorizonHI(nil); !ok || L != 0 {
		t.Errorf("empty sawtooth set: %d, %v", L, ok)
	}
}

// Property: the sawtooth never exceeds its linear upper bound
// u^H·ℓ + C^H·(1 − offset/T).
func TestSawtoothLinearBound(t *testing.T) {
	f := func(clRaw, chRaw, dRaw, tRaw uint8) bool {
		T := mcs.Ticks(tRaw%50) + 2
		D := mcs.Ticks(dRaw)%T + 1
		CH := mcs.Ticks(chRaw)%D + 1
		CL := mcs.Ticks(clRaw)%CH + 1
		VD := CL + mcs.Ticks(dRaw)%(D-CL+1)
		s := Sawtooth{CL: CL, CH: CH, D: D, VD: VD, T: T}
		uh := float64(CH) / float64(T)
		bound := func(l mcs.Ticks) float64 {
			return uh*float64(l) + float64(CH)*(1-float64(s.offset())/float64(T))
		}
		for l := mcs.Ticks(0); l < 4*T; l++ {
			if float64(s.Value(l)) > bound(l)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQPA(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var sum Sum
	for i := 0; i < 10; i++ {
		sum = append(sum, randomCurve(rng))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QPA(sum, 1<<20)
	}
}
