package dbf

import "mcsched/internal/mcs"

// LOAccum is the fold state behind HorizonLO, exported so incremental
// analyzers can extend a cached horizon one task at a time. The horizon
// inputs (utilization, affine offset, transient length, hyperperiod) are
// all left folds over the step slice, so appending a step to a task set
// and Add-ing its term to a saved accumulator reproduces HorizonLO of the
// extended set exactly — same operations in the same order, bit-identical
// float results.
//
// The zero value is the empty accumulator; resetting is `acc = LOAccum{}`.
type LOAccum struct {
	U, Off  float64
	MaxD    mcs.Ticks
	Hyper   mcs.Ticks
	HyperOK bool
	N       int
}

// Add folds one step curve into the accumulator.
func (a *LOAccum) Add(s Step) {
	if a.N == 0 {
		a.Hyper, a.HyperOK = 1, true
	}
	ui := float64(s.C) / float64(s.T)
	a.U += ui
	if d := float64(s.T-s.D) * ui; d > 0 {
		a.Off += d
	}
	if s.D > a.MaxD {
		a.MaxD = s.D
	}
	a.Hyper, a.HyperOK = lcmCapped(a.Hyper, s.T, a.HyperOK)
	a.N++
}

// Horizon returns the safe QPA horizon for the accumulated demand,
// identical to HorizonLO over the same steps in the same order.
func (a *LOAccum) Horizon() (L mcs.Ticks, ok bool) {
	if a.N == 0 {
		return 0, true
	}
	return horizon(a.U, a.Off, a.MaxD, a.Hyper, a.HyperOK)
}

// HIAccum is the HI-mode counterpart of LOAccum: the fold state behind
// HorizonHI over sawtooth curves. Unlike the LO fold it is keyed on each
// task's virtual deadline (through offset = D − VD), so it is only
// reusable while the cached VD assignment is; shapers must rebuild it
// after tuning any deadline.
type HIAccum struct {
	U, Off  float64
	MaxOff  mcs.Ticks
	Hyper   mcs.Ticks
	HyperOK bool
	N       int
}

// Add folds one sawtooth curve into the accumulator.
func (a *HIAccum) Add(s Sawtooth) {
	if a.N == 0 {
		a.Hyper, a.HyperOK = 1, true
	}
	ui := float64(s.CH) / float64(s.T)
	a.U += ui
	a.Off += float64(s.CH) * (1 - float64(s.offset())/float64(s.T))
	if s.offset() > a.MaxOff {
		a.MaxOff = s.offset()
	}
	a.Hyper, a.HyperOK = lcmCapped(a.Hyper, s.T, a.HyperOK)
	a.N++
}

// Horizon returns the safe QPA horizon for the accumulated demand,
// identical to HorizonHI over the same sawtooths in the same order.
func (a *HIAccum) Horizon() (L mcs.Ticks, ok bool) {
	if a.N == 0 {
		return 0, true
	}
	return horizon(a.U, a.Off, a.MaxOff, a.Hyper, a.HyperOK)
}

// Horizon combines independently maintained fold components into the safe
// QPA horizon — the same combiner LOAccum/HIAccum use. It exists for hot
// loops (the EY/ECDF shaper) that cache per-curve fold terms and re-sum
// only what a deadline move changed: as long as u is the utilization sum,
// off the offset sum in curve order, transient the max transient length
// and hyper/hyperOK the capped-lcm fold of the periods, the result is
// bit-identical to HorizonLO/HorizonHI over the same curves.
func Horizon(u, off float64, transient, hyper mcs.Ticks, hyperOK bool) (L mcs.Ticks, ok bool) {
	return horizon(u, off, transient, hyper, hyperOK)
}
