package dbf

import (
	"mcsched/internal/mcs"
)

// Sawtooth is the HI-mode demand-bound curve of a high-criticality task
// with LO-mode (virtual) relative deadline VD ≤ D, following the worst-case
// alignment of Ekberg & Yi (ECRTS 2012): the mode switch coincides with the
// virtual deadline of a carry-over job, whose remaining demand is
// C^H − done, and subsequent jobs arrive as densely as possible.
//
// With q = ℓ − (D − VD), m = ⌊q/T⌋ and r = q mod T:
//
//	dbf_HI(ℓ) = 0                                   if q < 0
//	dbf_HI(ℓ) = (m+1)·C^H − max(0, C^L − r)         otherwise.
//
// The curve jumps by C^H − C^L at q = m·T, ramps with slope 1 for
// r ∈ [0, C^L] (the carry-over job's guaranteed LO-mode progress shrinks as
// the switch moves earlier), then stays flat until the next jump. It is
// nondecreasing, piecewise linear with integer kinks, and integer-valued at
// integer points — exactly what QPA needs.
type Sawtooth struct {
	CL, CH mcs.Ticks // C^L ≤ C^H
	D      mcs.Ticks // real relative deadline
	VD     mcs.Ticks // LO-mode virtual deadline, C^L ≤ VD ≤ D
	T      mcs.Ticks // minimum release separation
}

// offset returns D − VD, the distance from the mode switch to the
// carry-over job's real deadline in the worst-case alignment.
func (s Sawtooth) offset() mcs.Ticks { return s.D - s.VD }

// Value implements Curve.
func (s Sawtooth) Value(l mcs.Ticks) mcs.Ticks {
	q := l - s.offset()
	if q < 0 {
		return 0
	}
	m := q / s.T
	r := q % s.T
	v := (m + 1) * s.CH
	if done := s.CL - r; done > 0 {
		v -= done
	}
	return v
}

// PrevKink implements Curve. Kinks sit at offset + m·T (jumps) and
// offset + m·T + C^L (ramp→flat boundaries).
func (s Sawtooth) PrevKink(l mcs.Ticks) mcs.Ticks {
	q := l - s.offset()
	if q <= 0 {
		return -1
	}
	m := q / s.T
	r := q % s.T
	var k mcs.Ticks
	switch {
	case r > s.CL:
		k = m*s.T + s.CL
	case r > 0:
		k = m * s.T
	default: // r == 0: previous period's boundary
		if m == 0 {
			return -1
		}
		if s.CL < s.T {
			k = (m-1)*s.T + s.CL
		} else {
			k = (m - 1) * s.T
		}
	}
	return s.offset() + k
}

// HorizonHI returns a safe horizon for the HI-mode test over a set of
// sawtooth curves: dbf_HI(ℓ) ≤ u^H·ℓ + C^H·(1 − offset/T) per task gives
// the utilization bound, and dbf_HI(ℓ+T) = dbf_HI(ℓ) + C^H for ℓ ≥ offset
// gives the hyperperiod bound for exactly-full systems. ok=false means the
// demand is infeasible at any horizon.
func HorizonHI(saws []Sawtooth) (L mcs.Ticks, ok bool) {
	var acc HIAccum
	for _, s := range saws {
		acc.Add(s)
	}
	return acc.Horizon()
}
