package dbf

import "mcsched/internal/mcs"

// StepSum aggregates step curves without boxing each element in a Curve
// interface value, so demand tests that re-run on every admission probe can
// keep their curves in a reusable scratch slice. It is otherwise equivalent
// to a Sum of the same Steps.
type StepSum []Step

// Value implements Curve.
func (s StepSum) Value(l mcs.Ticks) mcs.Ticks {
	var v mcs.Ticks
	for _, c := range s {
		v += c.Value(l)
	}
	return v
}

// PrevKink implements Curve.
func (s StepSum) PrevKink(l mcs.Ticks) mcs.Ticks {
	best := mcs.Ticks(-1)
	for _, c := range s {
		if k := c.PrevKink(l); k > best {
			best = k
		}
	}
	return best
}

// SawSum aggregates sawtooth curves, the HI-mode counterpart of StepSum.
type SawSum []Sawtooth

// Value implements Curve.
func (s SawSum) Value(l mcs.Ticks) mcs.Ticks {
	var v mcs.Ticks
	for _, c := range s {
		v += c.Value(l)
	}
	return v
}

// PrevKink implements Curve.
func (s SawSum) PrevKink(l mcs.Ticks) mcs.Ticks {
	best := mcs.Ticks(-1)
	for _, c := range s {
		if k := c.PrevKink(l); k > best {
			best = k
		}
	}
	return best
}
