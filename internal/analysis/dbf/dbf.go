// Package dbf provides demand-bound-function machinery shared by the
// dbf-based mixed-criticality schedulability tests (Ekberg–Yi and ECDF):
// per-task demand curves, their kink points, and a generalized
// Quick Processor-demand Analysis (QPA, Zhang & Burns 2009) that verifies
// ∀ℓ ∈ (0, L]: demand(ℓ) ≤ ℓ without enumerating every point.
//
// All curves here are nondecreasing in ℓ and piecewise linear with integer
// breakpoints ("kinks") and integer values at integer points, so the
// analysis is exact in int64 arithmetic. Between consecutive kinks a curve
// is affine; therefore sup(demand(ℓ) − ℓ) over a closed segment is attained
// at a segment endpoint, and it suffices to examine kink points (plus the
// QPA jump targets).
package dbf

import (
	"mcsched/internal/mcs"
)

// Curve is a nondecreasing demand curve with integer kinks.
type Curve interface {
	// Value returns the demand in any interval of length l (l ≥ 0).
	Value(l mcs.Ticks) mcs.Ticks
	// PrevKink returns the largest kink strictly smaller than l, or -1 if
	// none exists. A "kink" is any point where the curve's slope or value
	// changes (jump points and ramp boundaries).
	PrevKink(l mcs.Ticks) mcs.Ticks
}

// Sum aggregates several curves.
type Sum []Curve

// Value returns the total demand at l.
func (s Sum) Value(l mcs.Ticks) mcs.Ticks {
	var v mcs.Ticks
	for _, c := range s {
		v += c.Value(l)
	}
	return v
}

// PrevKink returns the largest kink of any member strictly below l.
func (s Sum) PrevKink(l mcs.Ticks) mcs.Ticks {
	best := mcs.Ticks(-1)
	for _, c := range s {
		if k := c.PrevKink(l); k > best {
			best = k
		}
	}
	return best
}

// maxQPAIters bounds the QPA loop. QPA converges geometrically for demand
// with long-run slope < 1; the bound is a defensive backstop — hitting it
// returns "not schedulable", which is the safe direction.
const maxQPAIters = 1 << 20

// QPA checks ∀ℓ ∈ (0, L]: demand(ℓ) ≤ ℓ for a nondecreasing curve. It
// walks down from L: at each point t it evaluates h = demand(t); a value
// h > t is a genuine violation (demand is nondecreasing, so the interval
// (h, t) cannot hide one — for τ ∈ (h, t), demand(τ) ≤ h < τ); h < t lets
// it jump straight to h; h == t steps to the previous kink. Exact for
// integer piecewise-linear curves because segment suprema of demand(ℓ) − ℓ
// sit on the inspected points.
//
// QPA and QPAWitness are generic over the concrete curve type so the hot
// paths (StepSum/SawSum scratch slices re-evaluated on every admission
// probe) avoid boxing a slice header into a Curve interface value per call
// — the walk itself is identical for any instantiation.
func QPA[C Curve](c C, L mcs.Ticks) bool {
	_, ok := QPAWitness(c, L)
	return ok
}

// QPAWitness is QPA returning a violation witness: a point t with
// demand(t) > t when the check fails (ok=false), or (-1, true) when the
// curve is schedulable up to L. The witness is what the deadline-tuning
// loops of the EY/ECDF tests steer on.
func QPAWitness[C Curve](c C, L mcs.Ticks) (witness mcs.Ticks, ok bool) {
	if L <= 0 {
		return -1, true
	}
	t := L
	for iter := 0; iter < maxQPAIters; iter++ {
		if t <= 0 {
			return -1, true
		}
		h := c.Value(t)
		switch {
		case h > t:
			return t, false
		case h < t:
			// No violation in (h, t]; resume at h, but h may sit below
			// every kink, in which case demand is zero there and we stop.
			if h <= 0 {
				return -1, true
			}
			t = h
		default: // h == t: boundary-tight point; inspect below the kink
			k := c.PrevKink(t)
			if k < 0 {
				return -1, true
			}
			t = k
		}
	}
	// Defensive: did not converge — report unschedulable (pessimistic).
	return t, false
}

// Exhaustive checks ∀ℓ ∈ (0, L]: demand(ℓ) ≤ ℓ by brute force over every
// integer point. It exists as the oracle QPA is verified against in tests;
// use QPA everywhere else.
func Exhaustive(c Curve, L mcs.Ticks) (witness mcs.Ticks, ok bool) {
	for t := mcs.Ticks(1); t <= L; t++ {
		if c.Value(t) > t {
			return t, false
		}
	}
	return -1, true
}

// Step is the classic demand step curve of a sporadic task: jumps of size
// C at D, D+T, D+2T, … — max(0, ⌊(l−D)/T⌋+1)·C.
type Step struct {
	C, D, T mcs.Ticks
}

// Value implements Curve.
func (s Step) Value(l mcs.Ticks) mcs.Ticks {
	if l < s.D {
		return 0
	}
	return ((l-s.D)/s.T + 1) * s.C
}

// PrevKink implements Curve.
func (s Step) PrevKink(l mcs.Ticks) mcs.Ticks {
	if l <= s.D {
		return -1
	}
	k := (l - s.D - 1) / s.T // largest k with D + kT < l
	return s.D + k*s.T
}

// lcmCap bounds the hyperperiod-based horizon; beyond it the periodic
// argument is abandoned (the utilization bound must then apply).
const lcmCap mcs.Ticks = 1 << 22

// horizon combines the two classic bounds on the intervals a
// processor-demand test must check. Every curve family here satisfies
// demand(ℓ+H) = demand(ℓ) + H·U for ℓ ≥ transient (H = hyperperiod,
// U = long-run slope), so with U ≤ 1 it suffices to check up to
// transient + H; and with U < 1 the affine bound
// demand(ℓ) ≤ U·ℓ + off gives the bound off/(1−U). ok=false means U > 1
// (always infeasible for nonempty demand) or U == 1 with an intractable
// hyperperiod (conservative reject; does not occur for the paper's
// generated workloads, whose utilizations are strictly below 1).
func horizon(u, off float64, transient, hyper mcs.Ticks, hyperOK bool) (L mcs.Ticks, ok bool) {
	const eps = 1e-9
	if u > 1+eps {
		return 0, false
	}
	var periodic mcs.Ticks
	havePeriodic := false
	if hyperOK && hyper > 0 {
		periodic = transient + hyper
		havePeriodic = true
	}
	if u < 1-eps {
		L = mcs.Ticks(off/(1-u)) + 1
		if L < transient {
			L = transient
		}
		if havePeriodic && periodic < L {
			L = periodic
		}
		return L, true
	}
	if havePeriodic {
		return periodic, true
	}
	return 0, false
}

// lcmCapped folds a period into a running hyperperiod, reporting whether
// the result stayed within lcmCap.
func lcmCapped(h, t mcs.Ticks, ok bool) (mcs.Ticks, bool) {
	if !ok {
		return h, false
	}
	g := h
	for b := t; b != 0; {
		g, b = b, g%b
	}
	if t/g > lcmCap/h { // h/g·t would exceed the cap (overflow-safe)
		return h, false
	}
	h = h / g * t
	if h > lcmCap {
		return h, false
	}
	return h, true
}

// HorizonLO returns a safe upper bound on the interval lengths that need
// checking for a step-curve LO-mode test: beyond it demand(ℓ) ≤ ℓ is
// implied. ok=false means the demand is infeasible at any horizon (see
// horizon).
func HorizonLO(steps []Step) (L mcs.Ticks, ok bool) {
	var acc LOAccum
	for _, s := range steps {
		acc.Add(s)
	}
	return acc.Horizon()
}
