// Package kernel defines the contract between the partitioning/admission
// layers and the reusable per-core analysis engines ("analyzers") that the
// schedulability-test families provide.
//
// A stateless core.Test re-derives everything from scratch on every call:
// fresh higher-priority sets, cold fixed-point iterations, new demand
// curves. An Analyzer is the allocation-free incremental counterpart: one
// instance is dedicated to one processor, keeps scratch buffers and
// memoized artifacts (priority orders, converged response times, running
// utilization sums) across calls, and answers the same question — "is this
// task set schedulable on one core?" — with exactly the same verdict as
// the family's stateless test. Bit-identical verdicts are the layer's
// contract; the differential suite in internal/analysis/crosstest certifies
// it for every family, and every shortcut an analyzer takes (fast-path
// filters, warm-started fixed points, incremental re-verification) is
// required to be provably verdict-preserving, not merely approximate.
//
// Analyzers additionally run two-sided fast-path filters before exact
// analysis — necessary-condition rejects (per-level utilization above 1,
// density bounds) and sufficient accepts (utilization bounds, analysis
// dominance such as AMC-rtb ⇒ AMC-max) — and account for how often each
// fires in Counters, so operators can see what fraction of analysis demand
// never reaches the expensive kernels.
package kernel

import "mcsched/internal/mcs"

// Test is the stateless uniprocessor schedulability-test contract,
// structurally identical to core.Test; it is redeclared here so the
// analysis packages can implement the analyzer capability without
// importing core.
type Test interface {
	// Name identifies the test, e.g. "EDF-VD".
	Name() string
	// Schedulable decides the given uniprocessor task set.
	Schedulable(mcs.TaskSet) bool
}

// Analyzer is a reusable per-core analysis engine. It is NOT safe for
// concurrent use: callers dedicate one analyzer to one core and serialize
// calls on it (the parallel probe engine satisfies this by probing distinct
// cores on distinct goroutines).
//
// Schedulable must return exactly the verdict the family's stateless Test
// returns for the same task set. Implementations may retain memoized state
// derived from the sets they analyze, but must copy anything they keep —
// callers typically pass scratch slices that are invalid after the call
// returns.
type Analyzer interface {
	Test
	// Forget informs the analyzer that the task with the given ID left the
	// core it models, so memoized artifacts can be pruned instead of
	// discarded. Unknown IDs are ignored.
	Forget(id int)
	// Invalidate drops all memoized state. The next Schedulable call runs
	// cold. It exists for callers that mutate core state behind the
	// analyzer's back.
	Invalidate()
	// Counters exposes the analyzer's fast-path and warm-start tallies.
	// The returned pointer is owned by the analyzer; callers read it only
	// while no Schedulable call is in flight.
	Counters() *Counters
}

// Incremental is the optional capability of a Test: families that provide
// a reusable per-core analyzer implement it, and core.Assigner detects it
// to route per-core probes through analyzers instead of the stateless path.
type Incremental interface {
	Test
	// NewAnalyzer returns a fresh per-core analyzer for this test
	// configuration.
	NewAnalyzer() Analyzer
}

// Counters tallies the analyzer fast paths. Fields are plain integers
// mutated by the owning analyzer only; cross-core aggregation happens under
// the caller's locks (see core.Assigner.AnalyzerCounters).
type Counters struct {
	// FastAccepts counts decisions (or per-task checks) answered by a
	// sufficient condition without running the exact kernel: the EDF-VD
	// plain-EDF utilization branch, demand density bounds, and the
	// AMC-rtb-implies-max dominance shortcut.
	FastAccepts uint64
	// FastRejects counts decisions answered by a necessary condition:
	// per-level utilization above 1 (with the family's own arithmetic, so
	// the exact kernel is guaranteed to agree).
	FastRejects uint64
	// ExactRuns counts full (cold) kernel runs.
	ExactRuns uint64
	// IncrementalHits counts decisions resolved from memoized per-core
	// state without a full kernel run: bottom-insertion under Audsley
	// priority assignment, partial re-verification under
	// deadline-monotonic orders, reused prefix sums, and the demand-bound
	// families' zero-iteration decisions off cached curves and horizon
	// folds (an extended set accepted or rejected before any shaping or
	// QPA re-walk beyond the seeded checks).
	IncrementalHits uint64
	// WarmStarts counts exact analyses seeded from memoized state instead
	// of a cold start: fixed-point solves resuming from a previously
	// converged response time, and demand-bound runs starting from cached
	// curves, filter sums and horizon folds extended by one task. A warm
	// start that still runs the full kernel also counts as an ExactRun; one
	// that resolves without it counts as an IncrementalHit.
	WarmStarts uint64
}

// AddTo accumulates c into dst.
func (c *Counters) AddTo(dst *Counters) {
	dst.FastAccepts += c.FastAccepts
	dst.FastRejects += c.FastRejects
	dst.ExactRuns += c.ExactRuns
	dst.IncrementalHits += c.IncrementalHits
	dst.WarmStarts += c.WarmStarts
}

// Total returns the total number of decisions the counters describe.
func (c *Counters) Total() uint64 {
	return c.FastAccepts + c.FastRejects + c.ExactRuns + c.IncrementalHits
}

// Stateless adapts a plain Test to the Analyzer interface for families
// without an incremental engine. Every call is an exact run.
type Stateless struct {
	T   Test
	ctr Counters
}

// NewStateless wraps t.
func NewStateless(t Test) *Stateless { return &Stateless{T: t} }

// Name implements Analyzer.
func (s *Stateless) Name() string { return s.T.Name() }

// Schedulable implements Analyzer by delegating to the stateless test.
func (s *Stateless) Schedulable(ts mcs.TaskSet) bool {
	s.ctr.ExactRuns++
	return s.T.Schedulable(ts)
}

// Forget implements Analyzer (no state to prune).
func (s *Stateless) Forget(int) {}

// Invalidate implements Analyzer (no state to drop).
func (s *Stateless) Invalidate() {}

// Counters implements Analyzer.
func (s *Stateless) Counters() *Counters { return &s.ctr }

// PrefixExtends reports whether ts equals base plus exactly one task
// appended at the end. Tasks are compared by value (all fields), because a
// released task ID may be re-admitted with different parameters. It is the
// guard every memo-reusing incremental path checks before trusting state
// derived from base.
func PrefixExtends(ts, base []mcs.Task) bool {
	if len(ts) != len(base)+1 {
		return false
	}
	for i := range base {
		if ts[i] != base[i] {
			return false
		}
	}
	return true
}
