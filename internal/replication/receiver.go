package replication

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync/atomic"

	"mcsched/internal/admission"
	"mcsched/internal/journal"
	"mcsched/internal/mcsio"
)

// maxFrameBody bounds one frame body: a snapshot payload is capped by the
// journal's record limit, plus framing slack.
const maxFrameBody = journal.MaxRecord + (1 << 20)

// Receiver is the follower side of journal replication: the HTTP face
// through which a warm-standby controller accepts frames from the leader.
// It owns no replication state of its own — sequencing, idempotency and
// verification all live in the admission layer's ApplyReplicated* methods —
// so it only decodes strictly, dispatches and counts.
type Receiver struct {
	ctrl *admission.Controller

	appliedRecords, appliedSnapshots, appliedRemoves, rejectedFrames atomic.Uint64
}

// NewReceiver wraps a controller (normally one started with
// Config.Follower) with the replication protocol handlers.
func NewReceiver(ctrl *admission.Controller) *Receiver {
	return &Receiver{ctrl: ctrl}
}

// AppliedStats counts the receiver's frame traffic.
type AppliedStats struct {
	// Records, Snapshots and Removes count successfully applied units
	// (records individually, frames for the other kinds).
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots"`
	Removes   uint64 `json:"removes,omitempty"`
	// RejectedFrames counts frames refused fail-closed (bad wire bytes,
	// sequence conflicts, divergence, wrong role).
	RejectedFrames uint64 `json:"rejected_frames,omitempty"`
}

// Applied snapshots the receiver counters.
func (r *Receiver) Applied() AppliedStats {
	return AppliedStats{
		Records:        r.appliedRecords.Load(),
		Snapshots:      r.appliedSnapshots.Load(),
		Removes:        r.appliedRemoves.Load(),
		RejectedFrames: r.rejectedFrames.Load(),
	}
}

// Status builds the position document served at StatusPath: the
// controller's role and every tenant's next expected sequence.
func (r *Receiver) Status() mcsio.ReplStatusJSON {
	return mcsio.ReplStatusJSON{
		Version: mcsio.ReplFormatVersion,
		Role:    admission.RoleName(r.ctrl.IsFollower()),
		Tenants: r.ctrl.ReplicationProgress(),
	}
}

// Mux returns a standalone handler exposing the replication protocol
// (frame apply, status, promote) — what the replication tests serve and
// the shape mcschedd mounts into its service mux.
func (r *Receiver) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+FramePath, r.HandleFrame)
	mux.HandleFunc("POST "+StreamPath, r.HandleStream)
	mux.HandleFunc("GET "+StatusPath, r.HandleStatus)
	mux.HandleFunc("POST /v1/promote", r.HandlePromote)
	return mux
}

// HandleFrame applies one replication frame. Responses:
//
//	200 + ack     frame applied (or idempotently skipped); Next is the
//	              follower's next expected sequence
//	409 + ack     sequence conflict; the leader resyncs its cursor to Next
//	409 + error   receiver is not a follower (stale leader fencing)
//	400 + error   frame failed strict decoding or verification — fail
//	              closed, nothing applied beyond the valid prefix
//	503 + error   local journal I/O failure; retryable
func (r *Receiver) HandleFrame(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxFrameBody))
	if err != nil {
		r.reject(w, http.StatusBadRequest, err)
		return
	}
	f, err := mcsio.DecodeReplFrame(body)
	if err != nil {
		r.reject(w, http.StatusBadRequest, err)
		return
	}
	next, err := r.applyFrame(f)
	if err != nil {
		r.frameError(w, f.Tenant, next, err)
		return
	}
	r.ack(w, f.Tenant, next)
}

// applyFrame dispatches one decoded frame into the controller and bumps
// the applied counters — the shared apply step of the per-frame POST path
// and the streaming path. next is the tenant's next expected sequence to
// carry in the acknowledgement (the resync position on failure).
func (r *Receiver) applyFrame(f mcsio.ReplFrameJSON) (next uint64, err error) {
	switch f.Kind {
	case mcsio.ReplRecords:
		recs := make([][]byte, len(f.Records))
		for i, m := range f.Records {
			recs[i] = m
		}
		next, applied, err := r.ctrl.ApplyReplicatedRecords(f.Tenant, f.First, recs)
		if err != nil {
			return next, err
		}
		// Count only records actually applied: redelivered prefixes a
		// leader retried are skipped idempotently and must not inflate the
		// counter operators compare against the leader's tail.
		r.appliedRecords.Add(uint64(applied))
		return next, nil
	case mcsio.ReplSnapshot:
		next, err := r.ctrl.ApplyReplicatedSnapshot(f.Tenant, f.Seq, f.Snapshot)
		if err != nil {
			return next, err
		}
		r.appliedSnapshots.Add(1)
		return next, nil
	default: // mcsio.ReplRemove: DecodeReplFrame admits no other kind
		if err := r.ctrl.ApplyReplicatedRemove(f.Tenant); err != nil {
			return 1, err
		}
		r.appliedRemoves.Add(1)
		return 1, nil
	}
}

// HandleStatus serves the follower's position document.
func (r *Receiver) HandleStatus(w http.ResponseWriter, _ *http.Request) {
	b, err := mcsio.EncodeReplStatus(r.Status())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// PromoteResponse answers POST /v1/promote.
type PromoteResponse struct {
	Role string `json:"role"`
	// Promoted is true when this call performed the promotion and false
	// when the controller already led (idempotent repeat).
	Promoted bool `json:"promoted"`
}

// HandlePromote flips the follower writable. Idempotent: promoting a
// leader answers 200 with Promoted=false.
func (r *Receiver) HandlePromote(w http.ResponseWriter, _ *http.Request) {
	promoted := r.ctrl.Promote()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PromoteResponse{
		Role:     admission.RoleName(r.ctrl.IsFollower()),
		Promoted: promoted,
	})
}

// frameError maps an apply failure to the protocol's response shapes.
func (r *Receiver) frameError(w http.ResponseWriter, tenant string, next uint64, err error) {
	switch {
	case errors.Is(err, admission.ErrReplicationGap):
		// A conflict ack carries the resync position instead of an error
		// body, so the shipper can self-heal without operator action.
		r.rejectedFrames.Add(1)
		if next == 0 {
			next = 1
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		if b, encErr := mcsio.EncodeReplAck(mcsio.ReplAckJSON{Tenant: tenant, Next: next}); encErr == nil {
			w.Write(b)
		}
	case errors.Is(err, admission.ErrNotFollower):
		r.reject(w, http.StatusConflict, err)
	case errors.Is(err, admission.ErrJournalIO):
		r.reject(w, http.StatusServiceUnavailable, err)
	default:
		r.reject(w, http.StatusBadRequest, err)
	}
}

func (r *Receiver) ack(w http.ResponseWriter, tenant string, next uint64) {
	b, err := mcsio.EncodeReplAck(mcsio.ReplAckJSON{Tenant: tenant, Next: next})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (r *Receiver) reject(w http.ResponseWriter, status int, err error) {
	r.rejectedFrames.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Status is the composite document mcschedd serves at /v1/replication and
// embeds in /v1/stats: the role plus whichever side's detail applies.
type Status struct {
	Role string `json:"role"`
	// Followers is the leader-side shipping view (one entry per follower).
	Followers []FollowerStatus `json:"followers,omitempty"`
	// Tenants and Applied are the follower-side view: per-tenant next
	// expected sequences and frame counters.
	Tenants map[string]uint64 `json:"tenants,omitempty"`
	Applied *AppliedStats     `json:"applied,omitempty"`
}
