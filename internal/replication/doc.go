// Package replication ships committed admission journal records from a
// leader controller to warm-standby followers over HTTP, and applies them
// on the follower through the admission layer's verified replay path, so a
// promoted follower holds bit-identical partitions, per-tenant stats and a
// warm verdict cache.
//
// The event-sourced journal (internal/journal) is the replication log:
// every committed transition is already a durable, totally ordered,
// CRC-framed record, so the leader side (Shipper) only needs a cursor per
// follower per tenant. The shipper wakes on the admission layer's
// post-commit hook, reads pending records through the journal's ReadFrom
// cursor, and POSTs them as versioned wire frames (internal/mcsio,
// ReplFrameJSON). A follower that has fallen behind the leader's
// snapshot-truncation horizon catches up from a snapshot frame instead;
// tenant deletions propagate as remove frames.
//
// The follower side (Receiver) decodes frames strictly and fails closed:
// torn bodies, reordered or gapped batches, version skew and tenant
// mismatches are refused at the wire layer, and every accepted record is
// re-verified against the local placement before it commits to the local
// journal (verify → append → apply), so a tampered stream cannot poison
// the replica's durable state. Redelivered records and snapshots are
// idempotent; every acknowledgement carries the next sequence the follower
// expects, which is all the leader needs to resynchronize its cursor after
// either side restarts.
//
// Failure model: one leader, one or more followers, fail-stop. The
// follower's history must be a prefix of the leader's — a follower must be
// (re)built from an empty data directory after the leader's history is
// reset, since the protocol carries no epoch to tell two histories apart.
// Promotion (admission.Controller.Promote) flips the follower writable; it
// deliberately changes no tenant state, because the replica was built
// through the same verified replay path as crash recovery, making
// promotion equivalent to a fresh Recover of the leader's journal.
package replication
