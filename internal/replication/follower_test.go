package replication

// Follower fail-closed suite: torn streams, reordered batches, gapped
// cursors, tampered records and role conflicts must all be refused without
// touching the replica's durable state — plus the promotion and
// write-gating contracts of a warm standby.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mcsched/internal/admission"
	"mcsched/internal/mcs"
	"mcsched/internal/mcsio"
)

// buildLeaderHistory creates a leader with one tenant and a few committed
// events, returning the controller and the tenant's raw journal records.
func buildLeaderHistory(t *testing.T, n int) (*admission.Controller, [][]byte) {
	t.Helper()
	leader := admission.NewController(leaderConfig(t.TempDir(), -1))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { leader.Close() })
	recs, _, err := sys.Journal().ReadFrom(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return leader, recs
}

// postFrame sends raw bytes to the follower's frame endpoint.
func postFrame(t *testing.T, srv *httptest.Server, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+FramePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func recordsFrame(t *testing.T, tenant string, first uint64, recs [][]byte) []byte {
	t.Helper()
	raw := make([]json.RawMessage, len(recs))
	for i, r := range recs {
		raw[i] = r
	}
	b, err := json.Marshal(mcsio.ReplFrameJSON{
		Version: 1, Kind: mcsio.ReplRecords, Tenant: tenant, First: first, Records: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFollowerFailClosed(t *testing.T) {
	_, recs := buildLeaderHistory(t, 4)
	fctrl, recv, srv := newFollower(t, t.TempDir())

	// Seed the follower with the valid prefix: create + 2 admits.
	if st, body := postFrame(t, srv, recordsFrame(t, "t", 1, recs[:3])); st != http.StatusOK {
		t.Fatalf("valid prefix refused: %d %s", st, body)
	}
	base := fingerprintOf(fctrl, "t")
	baseNext := fctrl.TenantNext("t")
	if baseNext != 4 {
		t.Fatalf("follower at %d after 3 records, want 4", baseNext)
	}

	unchanged := func(t *testing.T, when string) {
		t.Helper()
		if got := fingerprintOf(fctrl, "t"); got != base {
			t.Fatalf("%s mutated follower state:\n%s\n%s", when, base, got)
		}
		if got := fctrl.TenantNext("t"); got != baseNext {
			t.Fatalf("%s moved the journal tail to %d", when, got)
		}
	}

	t.Run("torn stream", func(t *testing.T) {
		full := recordsFrame(t, "t", 4, recs[3:])
		st, _ := postFrame(t, srv, full[:len(full)-7])
		if st != http.StatusBadRequest {
			t.Fatalf("torn frame: status %d, want 400", st)
		}
		unchanged(t, "torn frame")
	})
	t.Run("reordered batch", func(t *testing.T) {
		// Re-stamp two otherwise-valid records in swapped order.
		swapped := [][]byte{recs[3], recs[2]}
		st, body := postFrame(t, srv, recordsFrame(t, "t", 3, swapped))
		if st != http.StatusBadRequest {
			t.Fatalf("reordered batch: status %d (%s), want 400", st, body)
		}
		unchanged(t, "reordered batch")
	})
	t.Run("gap beyond tail", func(t *testing.T) {
		st, body := postFrame(t, srv, recordsFrame(t, "t", 5, recs[4:]))
		if st != http.StatusConflict {
			t.Fatalf("gapped frame: status %d, want 409", st)
		}
		ack, err := mcsio.DecodeReplAck(body)
		if err != nil || ack.Next != baseNext {
			t.Fatalf("gap ack: %+v, %v — want next %d", ack, err, baseNext)
		}
		unchanged(t, "gapped frame")
	})
	t.Run("unknown tenant mid-stream", func(t *testing.T) {
		st, body := postFrame(t, srv, recordsFrame(t, "ghost", 4, recs[3:4]))
		if st != http.StatusConflict {
			t.Fatalf("unknown-tenant frame: status %d, want 409", st)
		}
		ack, err := mcsio.DecodeReplAck(body)
		if err != nil || ack.Next != 1 {
			t.Fatalf("unknown-tenant ack: %+v, %v — want next 1", ack, err)
		}
	})
	t.Run("tampered record", func(t *testing.T) {
		// A well-formed admit whose recorded core contradicts the
		// placement: verification must refuse it before the local append.
		var e mcsio.EventJSON
		if err := json.Unmarshal(recs[3], &e); err != nil {
			t.Fatal(err)
		}
		e.Core++ // divergent core claim
		forged, err := mcsio.EncodeEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		st, body := postFrame(t, srv, recordsFrame(t, "t", 4, [][]byte{forged}))
		if st != http.StatusBadRequest {
			t.Fatalf("tampered record: status %d (%s), want 400", st, body)
		}
		unchanged(t, "tampered record")
	})
	t.Run("redelivery is idempotent", func(t *testing.T) {
		st, body := postFrame(t, srv, recordsFrame(t, "t", 1, recs[:3]))
		if st != http.StatusOK {
			t.Fatalf("redelivery refused: %d %s", st, body)
		}
		ack, err := mcsio.DecodeReplAck(body)
		if err != nil || ack.Next != baseNext {
			t.Fatalf("redelivery ack: %+v, %v", ack, err)
		}
		unchanged(t, "redelivery")
	})
	t.Run("overlap applies the suffix", func(t *testing.T) {
		st, body := postFrame(t, srv, recordsFrame(t, "t", 2, recs[1:]))
		if st != http.StatusOK {
			t.Fatalf("overlapping frame refused: %d %s", st, body)
		}
		if got := fctrl.TenantNext("t"); got != uint64(len(recs))+1 {
			t.Fatalf("after overlap: next %d, want %d", got, len(recs)+1)
		}
	})
	if recv.Applied().RejectedFrames == 0 {
		t.Fatal("receiver counted no rejected frames")
	}
}

func TestFollowerRejectsWritesUntilPromoted(t *testing.T) {
	_, recs := buildLeaderHistory(t, 3)
	fctrl, _, srv := newFollower(t, t.TempDir())
	if st, body := postFrame(t, srv, recordsFrame(t, "t", 1, recs)); st != http.StatusOK {
		t.Fatalf("seed frame refused: %d %s", st, body)
	}

	// Controller-level writes are fenced.
	if _, err := fctrl.CreateSystem("new", 2, allTests()[0]); !errors.Is(err, admission.ErrFollower) {
		t.Fatalf("follower CreateSystem: %v, want ErrFollower", err)
	}
	if err := fctrl.RemoveSystem("t"); !errors.Is(err, admission.ErrFollower) {
		t.Fatalf("follower RemoveSystem: %v, want ErrFollower", err)
	}
	sys, err := fctrl.System("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Admit(mcs.NewLC(99, 1, 1000)); !errors.Is(err, admission.ErrFollower) {
		t.Fatalf("follower Admit: %v, want ErrFollower", err)
	}
	if _, err := sys.AdmitBatch(mcs.TaskSet{mcs.NewLC(99, 1, 1000)}); !errors.Is(err, admission.ErrFollower) {
		t.Fatalf("follower AdmitBatch: %v, want ErrFollower", err)
	}
	if _, err := sys.Release(0); !errors.Is(err, admission.ErrFollower) {
		t.Fatalf("follower Release: %v, want ErrFollower", err)
	}
	// Reads and probes keep working on a standby.
	if res, err := sys.Probe(mcs.NewLC(99, 1, 1000)); err != nil || !res.Admitted {
		t.Fatalf("follower Probe: %+v, %v", res, err)
	}
	if sys.NumTasks() != 3 {
		t.Fatalf("follower holds %d tasks, want 3", sys.NumTasks())
	}

	promote(t, srv)
	if _, err := sys.Admit(mcs.NewLC(99, 1, 1000)); err != nil {
		t.Fatalf("promoted Admit: %v", err)
	}
	if _, err := sys.Release(99); err != nil {
		t.Fatalf("promoted Release: %v", err)
	}
}

func TestPromoteIdempotentAndFencing(t *testing.T) {
	_, recs := buildLeaderHistory(t, 2)
	fctrl, _, srv := newFollower(t, t.TempDir())
	if st, _ := postFrame(t, srv, recordsFrame(t, "t", 1, recs)); st != http.StatusOK {
		t.Fatal("seed frame refused")
	}

	promoteOnce := func() PromoteResponse {
		resp, err := http.Post(srv.URL+"/v1/promote", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr PromoteResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	if pr := promoteOnce(); !pr.Promoted || pr.Role != "leader" {
		t.Fatalf("first promote: %+v", pr)
	}
	if pr := promoteOnce(); pr.Promoted || pr.Role != "leader" {
		t.Fatalf("second promote not idempotent: %+v", pr)
	}

	// A stale leader keeps shipping: the promoted node must fence off even
	// a wire-valid frame it would previously have skipped idempotently.
	st, body := postFrame(t, srv, recordsFrame(t, "t", 1, recs))
	if st != http.StatusConflict {
		t.Fatalf("frame after promotion: status %d (%s), want 409", st, body)
	}
	if next := fctrl.TenantNext("t"); next != uint64(len(recs))+1 {
		t.Fatalf("fenced frame moved the tail to %d", next)
	}
	// The status document reports the new role.
	resp, err := http.Get(srv.URL + StatusPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	status, err := mcsio.DecodeReplStatus(b)
	if err != nil || status.Role != mcsio.RoleLeader {
		t.Fatalf("post-promotion status: %+v, %v", status, err)
	}
	if status.Tenants["t"] == 0 {
		t.Fatal("status lost the tenant position")
	}
}

// TestShipperResyncAfterLeaderRestart: a restarted leader (fresh shipper,
// no cursors) against a follower that already holds a prefix must converge
// through the status prime + idempotent redelivery, not duplicate state.
func TestShipperResyncAfterLeaderRestart(t *testing.T) {
	dir := t.TempDir()
	leader := admission.NewController(leaderConfig(dir, -1))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	fctrl, _, srv := newFollower(t, t.TempDir())
	ship := connect(t, leader, srv.URL)
	for i := 0; i < 5; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, ship)
	ship.Stop()
	leader.Close()

	// Second leader generation over the same data dir.
	leader2 := admission.NewController(leaderConfig(dir, -1))
	if _, err := leader2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	sys2, err := leader2.System("t")
	if err != nil {
		t.Fatal(err)
	}
	ship2 := connect(t, leader2, srv.URL)
	for i := 5; i < 8; i++ {
		if _, err := sys2.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, ship2)
	if got := fingerprintOf(fctrl, "t"); got != sys2.Fingerprint() {
		t.Fatalf("follower diverged after leader restart:\n%s\n%s", sys2.Fingerprint(), got)
	}
	st := ship2.Status()
	if len(st) != 1 || st[0].Tenants["t"].Lag != 0 {
		t.Fatalf("post-restart lag not zero: %+v", st)
	}
}

// TestFollowerRestartResumes: a follower restarted from its own data dir
// recovers the replica and keeps applying from where it stopped.
func TestFollowerRestartResumes(t *testing.T) {
	leader, recs := buildLeaderHistory(t, 4)
	fdir := t.TempDir()
	fctrl, _, srv := newFollower(t, fdir)
	if st, _ := postFrame(t, srv, recordsFrame(t, "t", 1, recs[:3])); st != http.StatusOK {
		t.Fatal("seed frame refused")
	}
	srv.Close()
	if err := fctrl.Close(); err != nil {
		t.Fatal(err)
	}

	fctrl2, _, srv2 := newFollower(t, fdir)
	if got := fctrl2.TenantNext("t"); got != 4 {
		t.Fatalf("restarted follower at %d, want 4", got)
	}
	if st, body := postFrame(t, srv2, recordsFrame(t, "t", 4, recs[3:])); st != http.StatusOK {
		t.Fatalf("resume frame refused: %d %s", st, body)
	}
	lsys, err := leader.System("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintOf(fctrl2, "t"); got != lsys.Fingerprint() {
		t.Fatalf("restarted follower diverged:\n%s\n%s", lsys.Fingerprint(), got)
	}
}

// TestReceiverRequiresJournaledFollower: an in-memory controller cannot be
// a follower target.
func TestReceiverRequiresJournaledFollower(t *testing.T) {
	cfg := admission.DefaultConfig()
	cfg.Follower = true
	cfg.Tests = resolveTest
	ctrl := admission.NewController(cfg) // no DataDir
	if _, _, err := ctrl.ApplyReplicatedRecords("t", 1, [][]byte{[]byte("{}")}); err == nil {
		t.Fatal("memory-only follower accepted records")
	}
	if _, err := NewShipper(ctrl, []string{"http://x"}, ShipperConfig{}); err == nil {
		t.Fatal("shipper accepted an unjournaled controller")
	}
	if _, err := NewShipper(admission.NewController(leaderConfig(t.TempDir(), 0)), nil, ShipperConfig{}); err == nil {
		t.Fatal("shipper accepted zero followers")
	}
	if _, err := NewShipper(admission.NewController(leaderConfig(t.TempDir(), 0)), []string{"not a url"}, ShipperConfig{}); err == nil {
		t.Fatal("shipper accepted a relative follower URL")
	}
}

// TestShipperSurvivesFollowerOutage: frames failing mid-stream retry with
// backoff and the follower converges once it returns.
func TestShipperSurvivesFollowerOutage(t *testing.T) {
	leader := admission.NewController(leaderConfig(t.TempDir(), -1))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	fctrl, recv, _ := newFollower(t, t.TempDir())
	_ = fctrl
	// A flaky proxy: refuses the first two frame deliveries outright.
	fails := 2
	mux := recv.Mux()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == FramePath && fails > 0 {
			fails--
			http.Error(w, "injected outage", http.StatusBadGateway)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	ship := connect(t, leader, proxy.URL)
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, ship)
	if fails != 0 {
		t.Fatalf("outage not exercised: %d injected failures left", fails)
	}
	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after outage:\n%s\n%s", sys.Fingerprint(), got)
	}
	st := ship.Status()
	if len(st) != 1 || st[0].SendErrors == 0 {
		t.Fatalf("status did not count send errors: %+v", st)
	}
	if fmt.Sprint(st[0].Tenants["t"].Lag) != "0" {
		t.Fatalf("lag not zero after convergence: %+v", st[0].Tenants)
	}
}
