package replication

// Persistent streaming replication: the hot-path alternative to one POST
// per frame. The leader holds one long-lived POST to StreamPath per
// follower and writes length-prefixed frames down the request body; the
// receiver applies each frame as it arrives and writes a status-tagged
// acknowledgement back through the (full-duplex) response body. The frame
// payloads are the exact same wire documents the per-frame path carries —
// JSON or binary per ShipperConfig.Codec, auto-detected on receipt — so
// the stream adds no new trust surface: every frame still decodes strictly
// and fails closed through the identical apply path.
//
// Uplink framing:   [4B little-endian frame length][frame bytes]
// Downlink framing: [1B status][4B little-endian body length][body]
//
// where status is one of the streamAck* codes below and the body is a
// ReplAckJSON (ok, conflict) or an {"error": ...} document (the rest). A
// semantic rejection keeps the stream open — the framing is intact and the
// next frame is independent; only transport or framing damage tears the
// connection down, after which the leader redials with capped backoff via
// the ordinary retry loop.

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mcsched/internal/admission"
	"mcsched/internal/mcsio"
)

// StreamPath is the streaming replication endpoint, mounted next to
// FramePath on the follower's mux.
const StreamPath = "/v1/replication/stream"

// Downlink ack status codes. They mirror the per-frame path's HTTP
// statuses one to one so the shipper can judge both paths with the same
// switch.
const (
	streamAckOK          = 0 // frame applied; body is the ack (HTTP 200)
	streamAckConflict    = 1 // sequence conflict; body carries the resync ack (HTTP 409)
	streamAckBad         = 2 // fail-closed rejection; body is an error document (HTTP 400)
	streamAckNotFollower = 3 // receiver is not a follower (HTTP 409, stale-leader fencing)
	streamAckUnavailable = 4 // local journal I/O failure; retryable (HTTP 503)
)

// maxStreamAckBody bounds one downlink ack body.
const maxStreamAckBody = 1 << 20

// errStreamUnsupported marks a follower without the stream endpoint; the
// link downgrades to per-frame POSTs permanently.
var errStreamUnsupported = errors.New("replication: follower does not serve the stream endpoint")

// ---------------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------------

// HandleStream serves one streaming replication connection: a read loop
// over length-prefixed frames, each applied exactly as a FramePath POST
// would and acknowledged in arrival order. Requires a full-duplex-capable
// server (net/http on HTTP/1.1 or HTTP/2); without it the handler answers
// 501 and the leader falls back to POSTs.
func (r *Receiver) HandleStream(w http.ResponseWriter, req *http.Request) {
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "streaming replication unsupported by this server", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// Commit the 200 before the first read so the leader's dial completes
	// immediately instead of waiting for the first ack.
	if err := rc.Flush(); err != nil {
		return
	}
	br := bufio.NewReader(req.Body)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // leader closed (or lost) the uplink; nothing to answer
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameBody {
			// Framing damage: the stream position is unrecoverable, so fail
			// the connection closed rather than resynchronize on guesses.
			r.rejectedFrames.Add(1)
			r.writeStreamAck(w, rc, streamAckBad, errorDocument(fmt.Errorf("replication: %d-byte stream frame", n)))
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		f, err := mcsio.DecodeReplFrame(body)
		if err != nil {
			// Strict-decode rejection: fail closed but keep the stream — the
			// length prefix preserved the frame boundary.
			r.rejectedFrames.Add(1)
			if r.writeStreamAck(w, rc, streamAckBad, errorDocument(err)) != nil {
				return
			}
			continue
		}
		next, err := r.applyFrame(f)
		if r.writeStreamResult(w, rc, f.Tenant, next, err) != nil {
			return
		}
	}
}

// writeStreamResult maps one apply outcome onto the downlink framing —
// the streaming analogue of HandleFrame's response mapping.
func (r *Receiver) writeStreamResult(w io.Writer, rc *http.ResponseController, tenant string, next uint64, err error) error {
	switch {
	case err == nil:
		body, encErr := mcsio.EncodeReplAck(mcsio.ReplAckJSON{Tenant: tenant, Next: next})
		if encErr != nil {
			return r.writeStreamAck(w, rc, streamAckUnavailable, errorDocument(encErr))
		}
		return r.writeStreamAck(w, rc, streamAckOK, body)
	case errors.Is(err, admission.ErrReplicationGap):
		r.rejectedFrames.Add(1)
		if next == 0 {
			next = 1
		}
		body, encErr := mcsio.EncodeReplAck(mcsio.ReplAckJSON{Tenant: tenant, Next: next})
		if encErr != nil {
			return r.writeStreamAck(w, rc, streamAckUnavailable, errorDocument(encErr))
		}
		return r.writeStreamAck(w, rc, streamAckConflict, body)
	case errors.Is(err, admission.ErrNotFollower):
		r.rejectedFrames.Add(1)
		return r.writeStreamAck(w, rc, streamAckNotFollower, errorDocument(err))
	case errors.Is(err, admission.ErrJournalIO):
		r.rejectedFrames.Add(1)
		return r.writeStreamAck(w, rc, streamAckUnavailable, errorDocument(err))
	default:
		r.rejectedFrames.Add(1)
		return r.writeStreamAck(w, rc, streamAckBad, errorDocument(err))
	}
}

// writeStreamAck frames one downlink acknowledgement and flushes it so the
// leader's pending read completes without waiting for buffer pressure.
func (r *Receiver) writeStreamAck(w io.Writer, rc *http.ResponseController, status byte, body []byte) error {
	msg := make([]byte, 5+len(body))
	msg[0] = status
	binary.LittleEndian.PutUint32(msg[1:5], uint32(len(body)))
	copy(msg[5:], body)
	if _, err := w.Write(msg); err != nil {
		return err
	}
	return rc.Flush()
}

// errorDocument renders an error as the protocol's JSON error body.
func errorDocument(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}

// ---------------------------------------------------------------------------
// Shipper side
// ---------------------------------------------------------------------------

// streamConn is one live stream toward a follower: the uplink pipe feeding
// the request body and the downlink response reader. Only the owning
// link's run goroutine touches it.
type streamConn struct {
	pw     *io.PipeWriter
	body   io.ReadCloser
	br     *bufio.Reader
	cancel context.CancelFunc
}

func (sc *streamConn) close() {
	sc.cancel()
	sc.pw.Close()
	sc.body.Close()
}

// closeStream tears down the link's stream (if any); the next streamSend
// redials.
func (l *link) closeStream() {
	if l.sc != nil {
		l.sc.close()
		l.sc = nil
	}
}

// probeStream checks that the follower serves the stream endpoint. The
// probe body is empty on purpose: a server refusing the route (404, 501,
// a proxy's 502) drains the request body before flushing its response, so
// probing with the real open-pipe request would deadlock — the server
// waiting for body EOF, the client waiting for the verdict. A zero-length
// POST drains instantly, and HandleStream treats it as an immediately
// closed uplink and answers 200.
func (l *link) probeStream(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.base+StreamPath, http.NoBody)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := l.s.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
		return errStreamUnsupported
	}
	return fmt.Errorf("stream probe: follower answered %d", resp.StatusCode)
}

// dialStream probes the endpoint, then opens the long-lived stream
// request. The response arrives as soon as the receiver commits its 200
// (before any frame flows); a deadline covers the dial so a server that
// stalls the response — e.g. one that raced into a non-streaming version
// after the probe and is now draining the open body — fails the attempt
// instead of wedging the link.
func (l *link) dialStream(ctx context.Context) (*streamConn, error) {
	if err := l.probeStream(ctx); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.base+StreamPath, pr)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	dialTimer := time.AfterFunc(l.s.streamTimeout, cancel)
	resp, err := l.s.streamClient.Do(req)
	dialTimer.Stop()
	if err != nil {
		cancel()
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close() // unblock the server's body drain before reading the verdict
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		switch resp.StatusCode {
		case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
			return nil, errStreamUnsupported
		}
		return nil, fmt.Errorf("stream: follower answered %d", resp.StatusCode)
	}
	return &streamConn{pw: pw, body: resp.Body, br: bufio.NewReader(resp.Body), cancel: cancel}, nil
}

// streamSend ships one frame over the stream (dialing on first use) and
// reads its acknowledgement, translating the downlink status codes into
// the HTTP statuses process already judges. Transport failures tear the
// connection down and report an error; the retry loop's next attempt
// redials, which is the reconnect-with-capped-backoff behavior — the
// backoff lives in run, shared with the POST path.
func (l *link) streamSend(ctx context.Context, f mcsio.ReplFrameJSON) (mcsio.ReplAckJSON, int, error) {
	body, err := l.s.cfg.Codec.EncodeReplFrame(f)
	if err != nil {
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("encode %s frame: %w", f.Kind, err)
	}
	if l.sc == nil {
		sc, err := l.dialStream(ctx)
		if err != nil {
			return mcsio.ReplAckJSON{}, 0, err
		}
		l.sc = sc
	}
	sc := l.sc
	// Per-frame deadline: a wedged follower aborts the whole request,
	// failing the pending read below; the next attempt redials.
	timer := time.AfterFunc(l.s.streamTimeout, sc.cancel)
	defer timer.Stop()

	msg := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(msg, uint32(len(body)))
	copy(msg[4:], body)
	if _, err := sc.pw.Write(msg); err != nil {
		l.closeStream()
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("stream write: %w", err)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(sc.br, hdr[:]); err != nil {
		l.closeStream()
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("stream ack: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxStreamAckBody {
		l.closeStream()
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("stream ack: %d-byte body", n)
	}
	ackBody := make([]byte, n)
	if _, err := io.ReadFull(sc.br, ackBody); err != nil {
		l.closeStream()
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("stream ack: %w", err)
	}
	switch hdr[0] {
	case streamAckOK, streamAckConflict:
		status := http.StatusOK
		if hdr[0] == streamAckConflict {
			status = http.StatusConflict
		}
		ack, err := mcsio.DecodeReplAck(ackBody)
		if err != nil {
			if status == http.StatusConflict {
				return mcsio.ReplAckJSON{}, status, nil // zero ack: caller errors out
			}
			return mcsio.ReplAckJSON{}, status, fmt.Errorf("unparseable ack: %.200s", ackBody)
		}
		if ack.Tenant != f.Tenant {
			return mcsio.ReplAckJSON{}, status, fmt.Errorf("ack names tenant %q, frame was %q", ack.Tenant, f.Tenant)
		}
		return ack, status, nil
	case streamAckNotFollower:
		return mcsio.ReplAckJSON{}, http.StatusConflict, nil
	case streamAckUnavailable:
		return mcsio.ReplAckJSON{}, http.StatusServiceUnavailable, nil
	default: // streamAckBad and anything unknown: fail-closed rejection
		return mcsio.ReplAckJSON{}, http.StatusBadRequest, nil
	}
}
