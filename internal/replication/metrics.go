package replication

import (
	"mcsched/internal/obs"
)

// RegisterMetrics registers the shipper's observable state on r: one
// ship-frame latency histogram across all links, and per-follower series
// (labelled by base URL) for shipped records/snapshots/removes, send
// errors (each a retry, since failed sends retry forever), queue depth and
// total record lag. Call it before Start, alongside SetHooks.
func (s *Shipper) RegisterMetrics(r *obs.Registry) {
	s.shipSeconds.Store(r.NewHistogram("mcsched_replication_ship_batch_duration_seconds",
		"Latency of one replication frame POST (records batch, snapshot or remove).",
		obs.LatencyBuckets))
	for _, l := range s.links {
		follower := obs.L("follower", l.base)
		r.CounterFunc("mcsched_replication_shipped_records_total",
			"Journal records acknowledged by the follower.",
			l.shippedRecords.Load, follower)
		r.CounterFunc("mcsched_replication_shipped_snapshots_total",
			"Snapshot frames acknowledged by the follower.",
			l.shippedSnapshots.Load, follower)
		r.CounterFunc("mcsched_replication_shipped_removes_total",
			"Tenant-removal frames acknowledged by the follower.",
			l.shippedRemoves.Load, follower)
		r.CounterFunc("mcsched_replication_send_errors_total",
			"Failed frame sends (each one is retried with backoff).",
			l.sendErrors.Load, follower)
		r.GaugeFunc("mcsched_replication_pending_work",
			"Queued work items (dirty tenants and removals) toward the follower.",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				return float64(len(l.queue))
			}, follower)
		r.GaugeFunc("mcsched_replication_lag_records",
			"Journal records committed on the leader but not yet acknowledged by the follower, summed over tenants.",
			func() float64 { return float64(l.totalLag()) }, follower)
	}
}

// totalLag sums the follower's record lag over all journaled tenants —
// the scrape-time scalar behind mcsched_replication_lag_records, using the
// same cursor arithmetic as Status.
func (l *link) totalLag() uint64 {
	progress := l.s.ctrl.ReplicationProgress()
	l.mu.Lock()
	defer l.mu.Unlock()
	var lag uint64
	for id, next := range progress {
		cursor := l.cursors[id]
		if cursor == 0 {
			lag += next - 1 // nothing acked yet: the whole history is owed
			continue
		}
		if cursor > next {
			cursor = next // follower ahead of a restarted leader's view
		}
		lag += next - cursor
	}
	return lag
}

// RegisterMetrics registers the receiver's frame counters on reg — the
// follower-side mirror of the shipper's series.
func (r *Receiver) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mcsched_replication_applied_records_total",
		"Replicated journal records applied (idempotent redeliveries excluded).",
		r.appliedRecords.Load)
	reg.CounterFunc("mcsched_replication_applied_snapshots_total",
		"Replicated snapshot frames applied.",
		r.appliedSnapshots.Load)
	reg.CounterFunc("mcsched_replication_applied_removes_total",
		"Replicated tenant removals applied.",
		r.appliedRemoves.Load)
	reg.CounterFunc("mcsched_replication_rejected_frames_total",
		"Frames refused fail-closed (bad bytes, sequence conflicts, wrong role).",
		r.rejectedFrames.Load)
}
