package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcsched/internal/admission"
	"mcsched/internal/journal"
	"mcsched/internal/mcsio"
	"mcsched/internal/obs"
)

// Wire paths of the replication protocol, relative to a follower's base
// URL. The mcschedd daemon mounts them on its service mux; Receiver.Mux
// builds a standalone handler with the same shape.
const (
	FramePath  = "/v1/replication/frame"
	StatusPath = "/v1/replication"
)

// ShipperConfig parameterizes a Shipper.
type ShipperConfig struct {
	// BatchRecords caps the records per frame. 0 selects 256; the wire
	// layer refuses anything over mcsio.MaxReplBatch.
	BatchRecords int
	// BatchBytes caps a frame's summed record payload. 0 selects 4 MiB. A
	// single record always ships regardless (the receiver's body cap
	// exceeds the journal's per-record limit), so the budget bounds frame
	// size without ever wedging a link on one large batch event.
	BatchBytes int
	// Retry is the initial backoff after a failed send and MaxRetry its
	// cap; backoff doubles between attempts. Defaults: 50ms and 2s.
	Retry    time.Duration
	MaxRetry time.Duration
	// Client issues the HTTP requests. Nil selects a client with a 10s
	// timeout. Streaming links reuse its transport but not its timeout
	// (which would kill the long-lived request); the timeout instead bounds
	// each frame's round trip.
	Client *http.Client
	// Codec selects the frame encoding on the wire: mcsio.CodecJSON (which
	// the empty value also selects) or mcsio.CodecBinary. A leader whose
	// journals are binary-encoded must ship binary frames — the JSON frame
	// document cannot carry binary records and the encoder refuses them.
	Codec mcsio.Codec
	// Stream switches each link from one POST per frame to a persistent
	// full-duplex stream (StreamPath): frames flow length-prefixed down one
	// long-lived request body and acks are read back from the response,
	// shedding the per-frame connection, header and JSON-envelope overhead.
	// A link falls back to POSTs when the follower does not serve the
	// stream endpoint, so mixed-version pairs keep replicating.
	Stream bool
	// Logf, when set, receives one line per send failure.
	Logf func(format string, args ...any)
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.BatchRecords <= 0 || c.BatchRecords > mcsio.MaxReplBatch {
		c.BatchRecords = 256
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 4 << 20
	}
	if c.Retry <= 0 {
		c.Retry = 50 * time.Millisecond
	}
	if c.MaxRetry <= 0 {
		c.MaxRetry = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Codec == "" {
		c.Codec = mcsio.CodecJSON
	}
	return c
}

// Shipper is the leader side of journal replication: one goroutine per
// follower drains a FIFO of dirty tenants, reading committed records
// through each tenant journal's ReadFrom cursor and POSTing them as wire
// frames. Register its Hooks on the controller, then Start it.
type Shipper struct {
	ctrl  *admission.Controller
	cfg   ShipperConfig
	links []*link

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool

	// streamClient drives long-lived stream requests: the configured
	// client's transport without its whole-request timeout. streamTimeout
	// bounds one frame's write+ack round trip instead.
	streamClient  *http.Client
	streamTimeout time.Duration

	// shipSeconds late-binds the frame-send latency histogram installed by
	// RegisterMetrics; a nil load means sends are not timed.
	shipSeconds atomic.Pointer[obs.Histogram]
}

// work is one queued unit for a link: ship a tenant's pending records, or
// propagate its removal.
type work struct {
	tenant string
	remove bool
}

// link is the shipping state toward one follower.
type link struct {
	base string
	s    *Shipper

	mu      sync.Mutex
	queue   []work
	queued  map[string]bool   // tenant has pending record-work in queue
	cursors map[string]uint64 // next sequence to ship, per tenant
	primed  bool              // cursors initialized from the follower's status
	lastErr string
	busy    bool

	wake chan struct{}

	// sc is the live stream connection (nil between dials) and noStream the
	// sticky POST fallback for followers without the stream endpoint. Both
	// are touched only by the link's run goroutine.
	sc       *streamConn
	noStream bool

	shippedRecords, shippedSnapshots, shippedRemoves, sendErrors atomic.Uint64
}

// NewShipper builds a shipper from a journaled leader controller and the
// followers' base URLs (e.g. "http://standby:8080").
func NewShipper(ctrl *admission.Controller, followers []string, cfg ShipperConfig) (*Shipper, error) {
	if !ctrl.Journaled() {
		return nil, errors.New("replication: shipper requires a journaled controller (data directory)")
	}
	if len(followers) == 0 {
		return nil, errors.New("replication: no followers")
	}
	s := &Shipper{ctrl: ctrl, cfg: cfg.withDefaults()}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.streamTimeout = s.cfg.Client.Timeout
	if s.streamTimeout <= 0 {
		s.streamTimeout = 10 * time.Second
	}
	s.streamClient = &http.Client{Transport: s.cfg.Client.Transport}
	for _, f := range followers {
		u, err := url.Parse(f)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("replication: follower URL %q: must be absolute (http://host:port)", f)
		}
		s.links = append(s.links, &link{
			base:    strings.TrimRight(f, "/"),
			s:       s,
			queued:  make(map[string]bool),
			cursors: make(map[string]uint64),
			wake:    make(chan struct{}, 1),
		})
	}
	return s, nil
}

// Hooks returns the commit observers to register on the controller
// (Controller.SetHooks) so committed appends wake the shipper.
func (s *Shipper) Hooks() admission.Hooks {
	return admission.Hooks{
		Committed: func(tenant string, seq uint64) { s.Committed(tenant, seq) },
		Removed:   func(tenant string) { s.Removed(tenant) },
	}
}

// Committed marks a tenant dirty on every link. It is non-blocking and
// safe from the append path (it runs under the tenant lock).
func (s *Shipper) Committed(tenant string, _ uint64) {
	for _, l := range s.links {
		l.enqueue(work{tenant: tenant})
	}
}

// Removed queues a tenant-removal frame on every link.
func (s *Shipper) Removed(tenant string) {
	for _, l := range s.links {
		l.enqueue(work{tenant: tenant, remove: true})
	}
}

// Start primes every link with the controller's current tenants (so
// history committed before the shipper existed — including recovered
// state — ships too) and launches the per-follower loops.
func (s *Shipper) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for _, id := range s.ctrl.SystemIDs() {
		s.Committed(id, 0)
	}
	for _, l := range s.links {
		s.wg.Add(1)
		go func(l *link) {
			defer s.wg.Done()
			l.run(s.ctx)
		}(l)
	}
}

// Stop cancels the loops and waits for them. Records committed but not yet
// shipped stay in the leader journal; a restarted shipper re-primes from
// the follower's status document.
func (s *Shipper) Stop() {
	s.cancel()
	s.wg.Wait()
}

// Flush blocks until every link is idle and every journaled tenant's
// cursor has reached the leader's tail, or ctx expires. It is the
// graceful-shutdown barrier and the test synchronization point. Polling
// backs off exponentially (100µs up to 5ms), so the common
// already-caught-up case returns in microseconds while a long drain
// against a slow follower does not spin on the tenant locks.
func (s *Shipper) Flush(ctx context.Context) error {
	delay := 100 * time.Microsecond
	for {
		if s.caughtUp() {
			return nil
		}
		select {
		case <-ctx.Done():
			var errs []string
			for _, l := range s.links {
				l.mu.Lock()
				if l.lastErr != "" {
					errs = append(errs, fmt.Sprintf("%s: %s", l.base, l.lastErr))
				}
				l.mu.Unlock()
			}
			if len(errs) > 0 {
				return fmt.Errorf("replication: flush: %w (%s)", ctx.Err(), strings.Join(errs, "; "))
			}
			return fmt.Errorf("replication: flush: %w", ctx.Err())
		case <-time.After(delay):
			if delay < 5*time.Millisecond {
				delay *= 2
			}
		}
	}
}

func (s *Shipper) caughtUp() bool {
	progress := s.ctrl.ReplicationProgress()
	for _, l := range s.links {
		l.mu.Lock()
		idle := len(l.queue) == 0 && !l.busy
		if idle {
			for id, next := range progress {
				if l.cursors[id] < next {
					idle = false
					break
				}
			}
		}
		l.mu.Unlock()
		if !idle {
			return false
		}
	}
	return true
}

// TenantLag is one tenant's shipping position toward one follower.
type TenantLag struct {
	// Acked is the highest sequence the follower has acknowledged
	// applying; LeaderNext is the leader's next append position. Lag is
	// their distance in records (0 = fully caught up).
	Acked      uint64 `json:"acked"`
	LeaderNext uint64 `json:"leader_next"`
	Lag        uint64 `json:"lag"`
}

// FollowerStatus is the shipper's view of one follower.
type FollowerStatus struct {
	URL              string               `json:"url"`
	Pending          int                  `json:"pending"`
	ShippedRecords   uint64               `json:"shipped_records"`
	ShippedSnapshots uint64               `json:"shipped_snapshots"`
	ShippedRemoves   uint64               `json:"shipped_removes,omitempty"`
	SendErrors       uint64               `json:"send_errors,omitempty"`
	LastError        string               `json:"last_error,omitempty"`
	Tenants          map[string]TenantLag `json:"tenants"`
}

// Status reports per-follower, per-tenant replication lag.
func (s *Shipper) Status() []FollowerStatus {
	progress := s.ctrl.ReplicationProgress()
	out := make([]FollowerStatus, 0, len(s.links))
	for _, l := range s.links {
		l.mu.Lock()
		fs := FollowerStatus{
			URL:              l.base,
			Pending:          len(l.queue),
			ShippedRecords:   l.shippedRecords.Load(),
			ShippedSnapshots: l.shippedSnapshots.Load(),
			ShippedRemoves:   l.shippedRemoves.Load(),
			SendErrors:       l.sendErrors.Load(),
			LastError:        l.lastErr,
			Tenants:          make(map[string]TenantLag, len(progress)),
		}
		for id, next := range progress {
			cursor := l.cursors[id]
			lag := next - 1 // nothing acked yet: the whole history is owed
			if cursor > 0 {
				if cursor > next {
					cursor = next // follower ahead of a restarted leader's view
				}
				lag = next - cursor
			}
			acked := uint64(0)
			if cursor > 0 {
				acked = cursor - 1
			}
			fs.Tenants[id] = TenantLag{Acked: acked, LeaderNext: next, Lag: lag}
		}
		l.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-follower loop
// ---------------------------------------------------------------------------

func (l *link) enqueue(w work) {
	l.mu.Lock()
	if w.remove {
		l.queue = append(l.queue, w)
		// Clear the record-work dedup flag: commits of a tenant recreated
		// under the same ID must enqueue fresh record-work AFTER this
		// removal, not be swallowed by a stale pre-removal item.
		delete(l.queued, w.tenant)
	} else if !l.queued[w.tenant] {
		l.queue = append(l.queue, w)
		l.queued[w.tenant] = true
	}
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// pop takes the head work item and marks the link busy; requeue puts a
// failed item back at the front.
func (l *link) pop() (work, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return work{}, false
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	if !w.remove {
		delete(l.queued, w.tenant)
	}
	l.busy = true
	return w, true
}

func (l *link) requeue(w work) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.queue = append([]work{w}, l.queue...)
	if !w.remove {
		l.queued[w.tenant] = true
	}
}

func (l *link) setIdle(errText string) {
	l.mu.Lock()
	l.busy = false
	l.lastErr = errText
	l.mu.Unlock()
}

func (l *link) run(ctx context.Context) {
	defer l.closeStream()
	backoff := l.s.cfg.Retry
	for {
		w, ok := l.pop()
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-l.wake:
				continue
			}
		}
		err := l.process(ctx, w)
		if err == nil {
			l.setIdle("")
			backoff = l.s.cfg.Retry
			continue
		}
		if ctx.Err() != nil {
			l.setIdle(err.Error())
			return
		}
		// Failed sends retry forever with capped exponential backoff: a
		// follower outage must not drop records, and a fail-closed
		// rejection stays visible through lastErr until an operator acts.
		l.sendErrors.Add(1)
		l.requeue(w)
		l.setIdle(err.Error())
		if logf := l.s.cfg.Logf; logf != nil {
			logf("replication: %s: %v", l.base, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > l.s.cfg.MaxRetry {
			backoff = l.s.cfg.MaxRetry
		}
	}
}

// process ships one work item to completion: all pending records of a
// tenant (looping batch by batch, falling back to a snapshot when the
// cursor is behind the leader's truncation horizon), or one removal.
func (l *link) process(ctx context.Context, w work) error {
	if w.remove {
		_, status, err := l.send(ctx, mcsio.ReplFrameJSON{
			Kind: mcsio.ReplRemove, Tenant: w.tenant,
		})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("remove %q: follower answered %d", w.tenant, status)
		}
		l.shippedRemoves.Add(1)
		l.mu.Lock()
		delete(l.cursors, w.tenant)
		l.mu.Unlock()
		return nil
	}

	for {
		sys, err := l.s.ctrl.System(w.tenant)
		if err != nil {
			return nil // tenant gone; its removal frame follows in the queue
		}
		lg := sys.Journal()
		if lg == nil {
			return nil
		}
		cursor := l.cursor(ctx, w.tenant)
		leaderNext := lg.NextSeq()
		if cursor >= leaderNext {
			return nil // caught up
		}
		recs, _, err := lg.ReadFrom(cursor, l.s.cfg.BatchRecords)
		switch {
		case errors.Is(err, journal.ErrCompacted):
			if err := l.shipSnapshot(ctx, w.tenant, lg); err != nil {
				return err
			}
			continue
		case err != nil:
			return fmt.Errorf("read %q from %d: %w", w.tenant, cursor, err)
		case len(recs) == 0:
			return nil
		}
		// Enforce the byte budget: a batch of large records (journal
		// payloads can approach the 16 MiB record limit) must not exceed
		// what the receiver's body cap accepts. At least one record always
		// ships, so progress is guaranteed.
		total := 0
		cut := len(recs)
		for i, r := range recs {
			if i > 0 && total+len(r) > l.s.cfg.BatchBytes {
				cut = i
				break
			}
			total += len(r)
		}
		recs = recs[:cut]
		raw := make([]json.RawMessage, len(recs))
		for i, r := range recs {
			raw[i] = r
		}
		ack, status, err := l.send(ctx, mcsio.ReplFrameJSON{
			Kind: mcsio.ReplRecords, Tenant: w.tenant, First: cursor, Records: raw,
		})
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			l.shippedRecords.Add(uint64(len(recs)))
			l.setCursor(w.tenant, ack.Next)
		case http.StatusConflict:
			if ack.Next == 0 {
				return fmt.Errorf("ship %q: follower refused batch at %d", w.tenant, cursor)
			}
			l.setCursor(w.tenant, ack.Next) // resync and retry from there
		default:
			return fmt.Errorf("ship %q: follower answered %d", w.tenant, status)
		}
	}
}

// shipSnapshot transfers the leader's latest snapshot for catch-up.
func (l *link) shipSnapshot(ctx context.Context, tenant string, lg *journal.Log) error {
	payload, seq, ok, err := lg.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot of %q: %w", tenant, err)
	}
	if !ok {
		return fmt.Errorf("snapshot of %q: compacted journal without snapshot", tenant)
	}
	ack, status, err := l.send(ctx, mcsio.ReplFrameJSON{
		Kind: mcsio.ReplSnapshot, Tenant: tenant, Seq: seq, Snapshot: payload,
	})
	if err != nil {
		return err
	}
	if status != http.StatusOK || ack.Next == 0 {
		return fmt.Errorf("snapshot of %q: follower answered %d", tenant, status)
	}
	l.shippedSnapshots.Add(1)
	l.setCursor(tenant, ack.Next)
	return nil
}

// cursor returns the next sequence to ship for a tenant, priming the
// link's cursors from the follower's status document on first use. Priming
// is best effort: without it every cursor starts at 1 and idempotent
// redelivery converges anyway.
func (l *link) cursor(ctx context.Context, tenant string) uint64 {
	l.mu.Lock()
	primed, cur := l.primed, l.cursors[tenant]
	l.mu.Unlock()
	if cur > 0 {
		return cur
	}
	if !primed {
		if st, err := l.fetchStatus(ctx); err == nil {
			l.mu.Lock()
			l.primed = true
			for id, next := range st.Tenants {
				if l.cursors[id] == 0 {
					l.cursors[id] = next
				}
			}
			cur = l.cursors[tenant]
			l.mu.Unlock()
			if cur > 0 {
				return cur
			}
		}
	}
	l.setCursor(tenant, 1)
	return 1
}

func (l *link) setCursor(tenant string, next uint64) {
	l.mu.Lock()
	l.cursors[tenant] = next
	l.mu.Unlock()
}

// fetchStatus GETs the follower's position document.
func (l *link) fetchStatus(ctx context.Context) (mcsio.ReplStatusJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, l.base+StatusPath, nil)
	if err != nil {
		return mcsio.ReplStatusJSON{}, err
	}
	resp, err := l.s.cfg.Client.Do(req)
	if err != nil {
		return mcsio.ReplStatusJSON{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return mcsio.ReplStatusJSON{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return mcsio.ReplStatusJSON{}, fmt.Errorf("status: follower answered %d", resp.StatusCode)
	}
	return mcsio.DecodeReplStatus(b)
}

// send ships one frame over the configured path: the persistent stream
// when enabled (falling back permanently to POSTs against a follower that
// does not serve it), a single POST otherwise. The returned status uses
// HTTP status codes regardless of the wire path, so process judges both
// identically.
func (l *link) send(ctx context.Context, f mcsio.ReplFrameJSON) (mcsio.ReplAckJSON, int, error) {
	if h := l.s.shipSeconds.Load(); h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start)) }()
	}
	if l.s.cfg.Stream && !l.noStream {
		ack, status, err := l.streamSend(ctx, f)
		if !errors.Is(err, errStreamUnsupported) {
			return ack, status, err
		}
		l.noStream = true
		if logf := l.s.cfg.Logf; logf != nil {
			logf("replication: %s: no stream endpoint, falling back to per-frame POSTs", l.base)
		}
	}
	return l.post(ctx, f)
}

// post sends one frame and parses the acknowledgement. A 409 with a
// parseable ack is a cursor resync, not an error; any other non-200 comes
// back with a zero ack for the caller to judge.
func (l *link) post(ctx context.Context, f mcsio.ReplFrameJSON) (mcsio.ReplAckJSON, int, error) {
	body, err := l.s.cfg.Codec.EncodeReplFrame(f)
	if err != nil {
		return mcsio.ReplAckJSON{}, 0, fmt.Errorf("encode %s frame: %w", f.Kind, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.base+FramePath, bytes.NewReader(body))
	if err != nil {
		return mcsio.ReplAckJSON{}, 0, err
	}
	if l.s.cfg.Codec == mcsio.CodecBinary {
		req.Header.Set("Content-Type", "application/octet-stream")
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := l.s.cfg.Client.Do(req)
	if err != nil {
		return mcsio.ReplAckJSON{}, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return mcsio.ReplAckJSON{}, resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
		if ack, err := mcsio.DecodeReplAck(b); err == nil {
			if ack.Tenant != f.Tenant {
				return mcsio.ReplAckJSON{}, resp.StatusCode,
					fmt.Errorf("ack names tenant %q, frame was %q", ack.Tenant, f.Tenant)
			}
			return ack, resp.StatusCode, nil
		}
		if resp.StatusCode == http.StatusOK {
			return mcsio.ReplAckJSON{}, resp.StatusCode, fmt.Errorf("unparseable ack: %.200s", b)
		}
	}
	return mcsio.ReplAckJSON{}, resp.StatusCode, nil
}
