package replication

// Cross-heuristic failover equivalence: a tenant created under a
// non-default placement heuristic must replicate its heuristic with its
// state, so a promoted follower keeps packing with the identical placer.
// nf is the interesting case — its scan cursor is genuine state that rides
// in snapshots — so both the record-by-record and the snapshot catch-up
// paths are pinned here.

import (
	"fmt"
	"math/rand"
	"testing"

	"mcsched/internal/admission"
	"mcsched/internal/taskgen"
)

func TestFailoverPreservesPlacementHeuristic(t *testing.T) {
	placements := []string{"nf", "wf-total", "ff@0.75"}
	test := allTests()[0]
	leaderDir := t.TempDir()
	leader := admission.NewController(leaderConfig(leaderDir, 3))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	fctrl, _, srv := newFollower(t, t.TempDir())
	ship := connect(t, leader, srv.URL)

	for i, p := range placements {
		sys, err := leader.CreateSystemWithPlacement(fmt.Sprintf("tenant-%d", i), 3, test, p)
		if err != nil {
			t.Fatalf("create %q: %v", p, err)
		}
		driveReplicated(t, sys, test, int64(800+i), 3, 0, func(string) {})
	}
	flush(t, ship)
	leaderFPs := map[string]string{}
	for _, id := range leader.SystemIDs() {
		leaderFPs[id] = fingerprintOf(leader, id)
	}

	// Kill the leader and promote the follower.
	ship.Stop()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	promote(t, srv)

	// The promoted follower packs with the replicated heuristics...
	for i, p := range placements {
		id := fmt.Sprintf("tenant-%d", i)
		fsys, err := fctrl.System(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fsys.PlacementName(); got != p {
			t.Fatalf("promoted tenant %s reports placement %q, want %q", id, got, p)
		}
		if got := fsys.Fingerprint(); got != leaderFPs[id] {
			t.Fatalf("promoted tenant %s diverged:\n%s\n%s", id, leaderFPs[id], got)
		}
	}

	// ...and every future verdict matches a fresh recovery of the leader's
	// own journal — the strongest statement that placement state (including
	// the nf cursor) crossed the wire whole.
	rec := admission.NewController(leaderConfig(leaderDir, 3))
	if _, err := rec.Recover(); err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rng := rand.New(rand.NewSource(881))
	gcfg := taskgen.DefaultConfig(3, 0.5, 0.3, 0.4)
	for i := range placements {
		id := fmt.Sprintf("tenant-%d", i)
		fsys, _ := fctrl.System(id)
		rsys, err := rec.System(id)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := taskgen.Generate(rng, gcfg)
		if err != nil {
			t.Fatal(err)
		}
		for j, task := range ts {
			task.ID = 1<<20 + j
			// Admit (not probe) so stateful cursors keep advancing in both.
			a, errA := fsys.Admit(task)
			b, errB := rsys.Admit(task)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("admit error divergence: %v vs %v", errA, errB)
			}
			if errA != nil {
				continue
			}
			if a.Admitted != b.Admitted || a.Core != b.Core {
				t.Fatalf("tenant %s: verdict divergence on %v: follower %+v vs recovered %+v", id, task, a, b)
			}
		}
		if got, want := fsys.Fingerprint(), rsys.Fingerprint(); got != want {
			t.Fatalf("tenant %s end states diverged:\n%s\n%s", id, want, got)
		}
	}
}

// TestFailoverPlacementSnapshotCatchUp: a follower that attaches late must
// learn the heuristic (and the nf cursor) from the snapshot frame alone.
func TestFailoverPlacementSnapshotCatchUp(t *testing.T) {
	test := allTests()[0]
	leaderDir := t.TempDir()
	leader := admission.NewController(leaderConfig(leaderDir, 3))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	sys, err := leader.CreateSystemWithPlacement("t", 3, test, "nf")
	if err != nil {
		t.Fatal(err)
	}
	// History with several snapshot truncations before the follower exists.
	driveReplicated(t, sys, test, 909, 4, 0, func(string) {})

	fctrl, recv, srv := newFollower(t, t.TempDir())
	ship := connect(t, leader, srv.URL)
	flush(t, ship)
	if recv.Applied().Snapshots == 0 {
		t.Fatal("catch-up used no snapshot frame despite compaction")
	}
	fsys, err := fctrl.System("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := fsys.PlacementName(); got != "nf" {
		t.Fatalf("snapshot catch-up lost the heuristic: %q", got)
	}
	if got := fsys.Fingerprint(); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after snapshot catch-up:\n%s\n%s", sys.Fingerprint(), got)
	}
	// The leader keeps admitting; the follower, fed only frames on top of
	// the snapshot, must track every nf decision — a wrong cursor restore
	// throws replay divergence here. (Re-resolve the tenant: a snapshot
	// install replaces the follower's System object.)
	driveReplicated(t, sys, test, 910, 2, 1<<16, func(string) {})
	flush(t, ship)
	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after post-snapshot records:\n%s\n%s", sys.Fingerprint(), got)
	}
	leader.Close()
}
