package replication

// Replication-lag benchmarks: what one committed transition costs end to
// end (leader decide → journal append → ship over HTTP → follower verify →
// follower append → ack), what the follower-side apply costs on its own,
// and what the commit hook adds to the leader's admit hot path when no
// follower is attached. Run via `go test -bench Replication -benchmem
// ./internal/replication/`.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"mcsched/internal/admission"
	"mcsched/internal/mcs"
	"mcsched/internal/mcsio"
)

func benchLeader(b *testing.B, dir string) *admission.Controller {
	b.Helper()
	cfg := admission.DefaultConfig()
	cfg.DataDir = dir
	cfg.SnapshotEvery = -1
	cfg.Tests = resolveTest
	ctrl := admission.NewController(cfg)
	if _, err := ctrl.Recover(); err != nil {
		b.Fatal(err)
	}
	return ctrl
}

func benchFollower(b *testing.B, dir string) (*admission.Controller, *httptest.Server) {
	b.Helper()
	cfg := admission.DefaultConfig()
	cfg.DataDir = dir
	cfg.SnapshotEvery = -1
	cfg.Tests = resolveTest
	cfg.Follower = true
	ctrl := admission.NewController(cfg)
	if _, err := ctrl.Recover(); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(NewReceiver(ctrl).Mux())
	b.Cleanup(srv.Close)
	b.Cleanup(func() { ctrl.Close() })
	return ctrl, srv
}

func benchFlush(b *testing.B, ship *Shipper) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ship.Flush(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplicationLagSingle measures one admit's full replication
// round trip: the flush after every admit makes ns/op the per-decision
// replication lag (leader commit through follower ack).
func BenchmarkReplicationLagSingle(b *testing.B) {
	leader := benchLeader(b, b.TempDir())
	defer leader.Close()
	_, srv := benchFollower(b, b.TempDir())
	ship, err := NewShipper(leader, []string{srv.URL}, ShipperConfig{})
	if err != nil {
		b.Fatal(err)
	}
	leader.SetHooks(ship.Hooks())
	ship.Start()
	defer ship.Stop()

	sys, err := leader.CreateSystem("bench", 8, allTests()[0])
	if err != nil {
		b.Fatal(err)
	}
	benchFlush(b, ship)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1_000_000)); err != nil {
			b.Fatal(err)
		}
		benchFlush(b, ship)
		if (i+1)%64 == 0 {
			// Keep the resident set bounded; releases replicate too.
			ids := make([]int, 0, 64)
			for j := i - 63; j <= i; j++ {
				ids = append(ids, j)
			}
			if _, err := sys.Release(ids...); err != nil {
				b.Fatal(err)
			}
			benchFlush(b, ship)
		}
	}
}

// BenchmarkReplicationLagBatch64 measures a 64-task batch admit's
// replication round trip — one journal record, one frame.
func BenchmarkReplicationLagBatch64(b *testing.B) {
	leader := benchLeader(b, b.TempDir())
	defer leader.Close()
	_, srv := benchFollower(b, b.TempDir())
	ship, err := NewShipper(leader, []string{srv.URL}, ShipperConfig{})
	if err != nil {
		b.Fatal(err)
	}
	leader.SetHooks(ship.Hooks())
	ship.Start()
	defer ship.Stop()

	sys, err := leader.CreateSystem("bench", 8, allTests()[0])
	if err != nil {
		b.Fatal(err)
	}
	benchFlush(b, ship)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make(mcs.TaskSet, 64)
		ids := make([]int, 64)
		for j := range batch {
			id := i*64 + j
			batch[j] = mcs.NewLC(id, 1, 1_000_000)
			ids[j] = id
		}
		br, err := sys.AdmitBatch(batch)
		if err != nil || !br.Admitted {
			b.Fatalf("batch rejected: %+v, %v", br, err)
		}
		benchFlush(b, ship)
		if _, err := sys.Release(ids...); err != nil {
			b.Fatal(err)
		}
		benchFlush(b, ship)
	}
}

// benchReplicationBatch64 is one 64-task batch admit's replication round
// trip (one journal record, one frame) under the given transport and
// codec configuration.
func benchReplicationBatch64(b *testing.B, cfg ShipperConfig, codec mcsio.Codec) {
	b.Helper()
	lcfg := admission.DefaultConfig()
	lcfg.DataDir = b.TempDir()
	lcfg.SnapshotEvery = -1
	lcfg.Tests = resolveTest
	lcfg.JournalCodec = codec
	leader := admission.NewController(lcfg)
	if _, err := leader.Recover(); err != nil {
		b.Fatal(err)
	}
	defer leader.Close()
	fcfg := admission.DefaultConfig()
	fcfg.DataDir = b.TempDir()
	fcfg.SnapshotEvery = -1
	fcfg.Tests = resolveTest
	fcfg.Follower = true
	fctrl := admission.NewController(fcfg)
	if _, err := fctrl.Recover(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fctrl.Close() })
	srv := httptest.NewServer(NewReceiver(fctrl).Mux())
	cfg.Codec = codec
	ship, err := NewShipper(leader, []string{srv.URL}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	leader.SetHooks(ship.Hooks())
	ship.Start()
	// Stop the shipper (closing any live stream) before the server closes.
	b.Cleanup(srv.Close)
	b.Cleanup(ship.Stop)

	sys, err := leader.CreateSystem("bench", 8, allTests()[0])
	if err != nil {
		b.Fatal(err)
	}
	benchFlush(b, ship)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make(mcs.TaskSet, 64)
		ids := make([]int, 64)
		for j := range batch {
			id := i*64 + j
			batch[j] = mcs.NewLC(id, 1, 1_000_000)
			ids[j] = id
		}
		br, err := sys.AdmitBatch(batch)
		if err != nil || !br.Admitted {
			b.Fatalf("batch rejected: %+v, %v", br, err)
		}
		benchFlush(b, ship)
		if _, err := sys.Release(ids...); err != nil {
			b.Fatal(err)
		}
		benchFlush(b, ship)
	}
}

// BenchmarkReplicationStreamBatch64 compares the replication transports on
// the batch round trip: per-frame POSTs versus the persistent full-duplex
// stream, under both record codecs. The stream saves a connection/request
// setup per frame; the binary codec saves encode/verify time per record.
func BenchmarkReplicationStreamBatch64(b *testing.B) {
	for _, codec := range []mcsio.Codec{mcsio.CodecJSON, mcsio.CodecBinary} {
		for _, stream := range []bool{false, true} {
			mode := "post"
			if stream {
				mode = "stream"
			}
			b.Run(string(codec)+"/"+mode, func(b *testing.B) {
				benchReplicationBatch64(b, ShipperConfig{Stream: stream}, codec)
			})
		}
	}
}

// BenchmarkFollowerApplyRecords isolates the follower's verify → append →
// apply cost per record, without HTTP: an admit/release history is built
// on a leader, then applied record by record.
func BenchmarkFollowerApplyRecords(b *testing.B) {
	leader := benchLeader(b, b.TempDir())
	defer leader.Close()
	sys, err := leader.CreateSystem("bench", 4, allTests()[0])
	if err != nil {
		b.Fatal(err)
	}
	// History of b.N events with a bounded resident set.
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if _, err := sys.Admit(mcs.NewLC(i/2, 1, 1_000_000)); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := sys.Release(i / 2); err != nil {
				b.Fatal(err)
			}
		}
	}
	recs, _, err := sys.Journal().ReadFrom(1, b.N+1)
	if err != nil {
		b.Fatal(err)
	}
	fctrl, _ := benchFollower(b, b.TempDir())

	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 256
	for off := 0; off < len(recs); off += chunk {
		end := off + chunk
		if end > len(recs) {
			end = len(recs)
		}
		if _, _, err := fctrl.ApplyReplicatedRecords("bench", uint64(off+1), recs[off:end]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationHookOverhead measures the admit hot path with hooks
// installed but nothing listening — the cost replication adds to a leader
// that has no follower work queued (an enqueue per link; here zero links
// are exercised by pointing the hook at a no-op).
func BenchmarkReplicationHookOverhead(b *testing.B) {
	for _, hooked := range []bool{false, true} {
		name := "bare"
		if hooked {
			name = "hooked"
		}
		b.Run(name, func(b *testing.B) {
			leader := benchLeader(b, b.TempDir())
			defer leader.Close()
			if hooked {
				leader.SetHooks(admission.Hooks{
					Committed: func(string, uint64) {},
					Removed:   func(string) {},
				})
			}
			sys, err := leader.CreateSystem("bench", 8, allTests()[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Admit(mcs.NewLC(i, 1, 1_000_000)); err != nil {
					b.Fatal(err)
				}
				if (i+1)%64 == 0 {
					ids := make([]int, 0, 64)
					for j := i - 63; j <= i; j++ {
						ids = append(ids, j)
					}
					if _, err := sys.Release(ids...); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
