package replication

// Streaming-transport suite: the persistent stream must be a pure
// transport swap — every codec and transport combination converges to
// bit-identical followers, a follower without the endpoint degrades to
// POSTs, a torn dial redials, and raw wire damage on the stream fails
// closed exactly like the per-frame path.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mcsched/internal/admission"
	"mcsched/internal/mcs"
	"mcsched/internal/mcsio"
)

// connectCfg wires a shipper with an explicit config from the leader to
// the follower URL and starts it.
func connectCfg(t *testing.T, leader *admission.Controller, followerURL string, cfg ShipperConfig) *Shipper {
	t.Helper()
	ship, err := NewShipper(leader, []string{followerURL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	leader.SetHooks(ship.Hooks())
	ship.Start()
	t.Cleanup(ship.Stop)
	return ship
}

// codecFollower builds a follower whose own journal uses the given codec
// and serves it behind a handler that counts per-path traffic.
func codecFollower(t *testing.T, codec mcsio.Codec) (*admission.Controller, *Receiver, *httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	cfg := followerConfig(t.TempDir())
	cfg.JournalCodec = codec
	ctrl := admission.NewController(cfg)
	if _, err := ctrl.Recover(); err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(ctrl)
	mux := recv.Mux()
	var framePosts, streamDials atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case FramePath:
			framePosts.Add(1)
		case StreamPath:
			streamDials.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { ctrl.Close() })
	return ctrl, recv, srv, &framePosts, &streamDials
}

// TestReplicationTransportCodecMatrix drives the failover-equivalence
// workload across every codec × transport combination: the follower must
// be bit-identical at every commit index, the promoted follower must match
// a fresh recovery of the leader's journal, and each transport must have
// actually carried the frames it claims to.
func TestReplicationTransportCodecMatrix(t *testing.T) {
	for _, codec := range []mcsio.Codec{mcsio.CodecJSON, mcsio.CodecBinary} {
		for _, stream := range []bool{false, true} {
			codec, stream := codec, stream
			t.Run(fmt.Sprintf("%s/stream=%v", codec, stream), func(t *testing.T) {
				t.Parallel()
				test := allTests()[0]
				leaderDir := t.TempDir()
				lcfg := leaderConfig(leaderDir, 3)
				lcfg.JournalCodec = codec
				lcfg.GroupCommit = true
				leader := admission.NewController(lcfg)
				if _, err := leader.Recover(); err != nil {
					t.Fatal(err)
				}
				fctrl, _, srv, framePosts, streamDials := codecFollower(t, codec)
				ship := connectCfg(t, leader, srv.URL, ShipperConfig{Codec: codec, Stream: stream})

				sys, err := leader.CreateSystem("t", 4, test)
				if err != nil {
					t.Fatal(err)
				}
				commits := 0
				driveReplicated(t, sys, test, 515, 2, 0, func(label string) {
					commits++
					flush(t, ship)
					if lfp, ffp := sys.Fingerprint(), fingerprintOf(fctrl, "t"); lfp != ffp {
						t.Fatalf("commit %d (%s): follower diverged:\nleader:\n%s\nfollower:\n%s",
							commits, label, lfp, ffp)
					}
				})
				if commits == 0 {
					t.Fatal("workload committed nothing")
				}
				flush(t, ship)
				leaderFP := sys.Fingerprint()

				// The claimed transport carried the frames.
				if stream {
					if streamDials.Load() == 0 {
						t.Fatal("stream transport never dialed the stream endpoint")
					}
					if framePosts.Load() != 0 {
						t.Fatalf("stream transport fell back to %d frame POSTs", framePosts.Load())
					}
				} else {
					if framePosts.Load() == 0 {
						t.Fatal("POST transport sent no frames")
					}
					if streamDials.Load() != 0 {
						t.Fatalf("POST transport dialed the stream endpoint %d times", streamDials.Load())
					}
				}

				// Kill the leader, promote, compare against a fresh recovery.
				ship.Stop()
				if err := leader.Close(); err != nil {
					t.Fatal(err)
				}
				promote(t, srv)
				rec := admission.NewController(lcfg)
				if _, err := rec.Recover(); err != nil {
					t.Fatal(err)
				}
				defer rec.Close()
				rsys, err := rec.System("t")
				if err != nil {
					t.Fatal(err)
				}
				if got := fingerprintOf(fctrl, "t"); got != rsys.Fingerprint() || got != leaderFP {
					t.Fatalf("promoted follower != fresh recovery:\nfollower:\n%s\nrecovered:\n%s", got, rsys.Fingerprint())
				}
			})
		}
	}
}

// TestStreamFallsBackToPost: a follower without the stream endpoint must
// degrade to per-frame POSTs on the first dial, without counting send
// errors, and still converge.
func TestStreamFallsBackToPost(t *testing.T) {
	leader := admission.NewController(leaderConfig(t.TempDir(), -1))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	fctrl, recv, _ := newFollower(t, t.TempDir())
	// An old-version follower: FramePath only, 404 on the stream.
	mux := recv.Mux()
	var framePosts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == StreamPath {
			http.NotFound(w, r)
			return
		}
		if r.URL.Path == FramePath {
			framePosts.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	// Registered before connectCfg: cleanups run LIFO, so the shipper (and
	// its live stream) stops before the server waits out open connections.
	t.Cleanup(srv.Close)

	ship := connectCfg(t, leader, srv.URL, ShipperConfig{Stream: true})
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, ship)
	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after fallback:\n%s\n%s", sys.Fingerprint(), got)
	}
	if framePosts.Load() == 0 {
		t.Fatal("fallback shipped no frame POSTs")
	}
	st := ship.Status()
	if len(st) != 1 || st[0].SendErrors != 0 {
		t.Fatalf("clean fallback counted send errors: %+v", st)
	}
}

// TestStreamRedialsAfterDialFailure: a dial failure that is not
// endpoint-absence (here an injected 502) must retry with backoff and
// redial the stream — not fall back to POSTs.
func TestStreamRedialsAfterDialFailure(t *testing.T) {
	leader := admission.NewController(leaderConfig(t.TempDir(), -1))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	fctrl, recv, _ := newFollower(t, t.TempDir())
	mux := recv.Mux()
	var framePosts atomic.Int64
	var failsLeft atomic.Int64
	failsLeft.Store(2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == StreamPath && failsLeft.Load() > 0 {
			failsLeft.Add(-1)
			http.Error(w, "injected outage", http.StatusBadGateway)
			return
		}
		if r.URL.Path == FramePath {
			framePosts.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	ship := connectCfg(t, leader, srv.URL, ShipperConfig{Stream: true})
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, ship)
	if failsLeft.Load() != 0 {
		t.Fatalf("outage not exercised: %d injected failures left", failsLeft.Load())
	}
	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after redial:\n%s\n%s", sys.Fingerprint(), got)
	}
	if framePosts.Load() != 0 {
		t.Fatalf("transient dial failure demoted the link to %d POSTs", framePosts.Load())
	}
	st := ship.Status()
	if len(st) != 1 || st[0].SendErrors == 0 {
		t.Fatalf("status did not count the failed dials: %+v", st)
	}
}

// rawStream is a hand-rolled stream client for wire-level fault injection.
type rawStream struct {
	pw   *io.PipeWriter
	resp *http.Response
	br   *bufio.Reader
}

func dialRawStream(t *testing.T, base string) *rawStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+StreamPath, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream dial: status %d", resp.StatusCode)
	}
	rs := &rawStream{pw: pw, resp: resp, br: bufio.NewReader(resp.Body)}
	t.Cleanup(func() {
		rs.pw.Close()
		rs.resp.Body.Close()
	})
	return rs
}

// send writes one length-prefixed frame and reads back the status-tagged
// acknowledgement.
func (rs *rawStream) send(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := rs.pw.Write(append(hdr[:], frame...)); err != nil {
		t.Fatal(err)
	}
	return rs.readAck(t)
}

func (rs *rawStream) readAck(t *testing.T) (byte, []byte) {
	t.Helper()
	var ackHdr [5]byte
	if _, err := io.ReadFull(rs.br, ackHdr[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(ackHdr[1:5]))
	if _, err := io.ReadFull(rs.br, body); err != nil {
		t.Fatal(err)
	}
	return ackHdr[0], body
}

// binaryRecordsFrame renders a binary-codec records frame.
func binaryRecordsFrame(t *testing.T, tenant string, first uint64, recs [][]byte) []byte {
	t.Helper()
	raw := make([]json.RawMessage, len(recs))
	for i, r := range recs {
		raw[i] = r
	}
	b, err := mcsio.CodecBinary.EncodeReplFrame(mcsio.ReplFrameJSON{
		Kind: mcsio.ReplRecords, Tenant: tenant, First: first, Records: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamFailClosedBinary drives raw binary frames down a stream:
// tampered frame bytes and tampered record CRCs must be refused without
// touching the replica and without tearing the (still-framed) stream,
// while framing damage must close the connection.
func TestStreamFailClosedBinary(t *testing.T) {
	// A binary-journal leader provides genuine binary records.
	lcfg := leaderConfig(t.TempDir(), -1)
	lcfg.JournalCodec = mcsio.CodecBinary
	leader := admission.NewController(lcfg)
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	sys, err := leader.CreateSystem("t", 2, allTests()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.Admit(mcs.NewLC(i, 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := sys.Journal().ReadFrom(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !mcsio.IsBinaryRecord(recs[0]) {
		t.Fatal("binary-codec journal produced non-binary records")
	}

	fctrl, _, srv := newFollower(t, t.TempDir())
	rs := dialRawStream(t, srv.URL)

	// Valid prefix applies.
	if status, body := rs.send(t, binaryRecordsFrame(t, "t", 1, recs[:3])); status != streamAckOK {
		t.Fatalf("valid prefix: status %d (%s)", status, body)
	}
	base := fingerprintOf(fctrl, "t")
	baseNext := fctrl.TenantNext("t")
	if baseNext != 4 {
		t.Fatalf("follower at %d after 3 records, want 4", baseNext)
	}
	unchanged := func(t *testing.T, when string) {
		t.Helper()
		if got := fingerprintOf(fctrl, "t"); got != base {
			t.Fatalf("%s mutated follower state:\n%s\n%s", when, base, got)
		}
		if got := fctrl.TenantNext("t"); got != baseNext {
			t.Fatalf("%s moved the journal tail to %d", when, got)
		}
	}

	// Tampered frame bytes: the frame CRC refuses it; the stream survives.
	frame := binaryRecordsFrame(t, "t", 4, recs[3:])
	tampered := append([]byte(nil), frame...)
	tampered[len(tampered)-1] ^= 0xFF
	if status, _ := rs.send(t, tampered); status != streamAckBad {
		t.Fatalf("tampered frame: status %d, want %d", status, streamAckBad)
	}
	unchanged(t, "tampered frame")

	// Tampered record inside an intact frame: flip the embedded record's
	// own CRC in place and re-seal the frame checksum, so the frame decodes
	// and the record-level CRC is what refuses it.
	inner := binaryRecordsFrame(t, "t", 4, recs[3:4])
	idx := bytes.Index(inner, recs[3])
	if idx < 0 {
		t.Fatal("record bytes not embedded verbatim in the binary frame")
	}
	inner[idx+len(recs[3])-1] ^= 0xFF
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(inner[len(inner)-4:], crc32.Checksum(inner[:len(inner)-4], castagnoli))
	if status, _ := rs.send(t, inner); status != streamAckBad {
		t.Fatal("tampered record accepted")
	}
	unchanged(t, "tampered record")

	// Sequence gap: conflict ack carries the resync position.
	status, body := rs.send(t, binaryRecordsFrame(t, "t", 5, recs[4:]))
	if status != streamAckConflict {
		t.Fatalf("gapped frame: status %d, want %d", status, streamAckConflict)
	}
	if ack, err := mcsio.DecodeReplAck(body); err != nil || ack.Next != baseNext {
		t.Fatalf("gap ack: %+v, %v — want next %d", ack, err, baseNext)
	}
	unchanged(t, "gapped frame")

	// The stream is still live: the valid suffix applies.
	if status, body := rs.send(t, binaryRecordsFrame(t, "t", 4, recs[3:])); status != streamAckOK {
		t.Fatalf("valid suffix after rejections: status %d (%s)", status, body)
	}
	if got := fctrl.TenantNext("t"); got != uint64(len(recs))+1 {
		t.Fatalf("after suffix: next %d, want %d", got, len(recs)+1)
	}

	// Framing damage (zero-length frame) closes the connection.
	var zero [4]byte
	if _, err := rs.pw.Write(zero[:]); err != nil {
		t.Fatal(err)
	}
	if status, _ := rs.readAck(t); status != streamAckBad {
		t.Fatalf("zero-length frame: status %d, want %d", status, streamAckBad)
	}
	if _, err := rs.br.ReadByte(); err != io.EOF {
		t.Fatalf("stream survived framing damage: %v", err)
	}
}
