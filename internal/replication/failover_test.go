package replication

// Failover-equivalence suite: the replication layer exists so that killing
// the leader at ANY committed event index leaves a follower that, once
// promoted, is indistinguishable from a controller freshly recovered from
// the leader's own journal. The tests drive deterministic workloads across
// all four schedulability tests, flush the shipper after every committed
// transition (equivalent to a leader kill at that index, since shipping is
// the only channel), and require the follower's partition fingerprints to
// be bit-identical at each step; at the end the follower is promoted over
// HTTP and compared — fingerprints, committed-transition stats and future
// verdicts — against a fresh admission.Recover of the leader's data dir.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcsched/internal/admission"
	"mcsched/internal/analysis/amc"
	"mcsched/internal/analysis/ecdf"
	"mcsched/internal/analysis/edfvd"
	"mcsched/internal/analysis/ey"
	"mcsched/internal/core"
	"mcsched/internal/mcs"
	"mcsched/internal/taskgen"
)

func allTests() []core.Test {
	return []core.Test{
		edfvd.Test{},
		ecdf.Test{Opts: ecdf.DefaultOptions()},
		ey.Test{Opts: ey.DefaultOptions()},
		amc.Test{Opts: amc.DefaultOptions()},
	}
}

func resolveTest(name string) (core.Test, bool) {
	for _, t := range allTests() {
		if t.Name() == name {
			return t, true
		}
	}
	return nil, false
}

func leaderConfig(dir string, snapEvery int) admission.Config {
	cfg := admission.DefaultConfig()
	cfg.DataDir = dir
	cfg.SnapshotEvery = snapEvery
	cfg.Tests = resolveTest
	return cfg
}

func followerConfig(dir string) admission.Config {
	cfg := leaderConfig(dir, 5)
	cfg.Follower = true
	return cfg
}

// newFollower builds a follower controller and serves its replication
// protocol over a real HTTP listener.
func newFollower(t *testing.T, dir string) (*admission.Controller, *Receiver, *httptest.Server) {
	t.Helper()
	ctrl := admission.NewController(followerConfig(dir))
	if _, err := ctrl.Recover(); err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(ctrl)
	srv := httptest.NewServer(recv.Mux())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { ctrl.Close() })
	return ctrl, recv, srv
}

// connect wires a shipper from the leader to the follower URL and starts it.
func connect(t *testing.T, leader *admission.Controller, followerURL string) *Shipper {
	t.Helper()
	ship, err := NewShipper(leader, []string{followerURL}, ShipperConfig{})
	if err != nil {
		t.Fatal(err)
	}
	leader.SetHooks(ship.Hooks())
	ship.Start()
	t.Cleanup(ship.Stop)
	return ship
}

func flush(t *testing.T, ship *Shipper) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := ship.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// fingerprintOf resolves a tenant's bit-precision state oracle, or "" when
// the controller does not hold it.
func fingerprintOf(c *admission.Controller, id string) string {
	sys, err := c.System(id)
	if err != nil {
		return ""
	}
	return sys.Fingerprint()
}

// driveReplicated applies a deterministic mix of admits, probes, batches
// and releases to sys, invoking check after every committed transition —
// each call is one potential leader-kill index.
func driveReplicated(t *testing.T, sys *admission.System, test core.Test, seed int64, rounds, idBase int, check func(label string)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := taskgen.DefaultConfig(4, 0.5, 0.3, 0.4)
	cfg.Constrained = test.Name() != "EDF-VD"
	nextID := idBase
	var resident []int
	for round := 0; round < rounds; round++ {
		ts, err := taskgen.Generate(rng, cfg)
		if err != nil {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			batch := ts.Clone()
			for i := range batch {
				batch[i].ID = nextID
				nextID++
			}
			br, err := sys.AdmitBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if br.Admitted {
				for _, r := range br.Results {
					resident = append(resident, r.TaskID)
				}
				check(fmt.Sprintf("round %d: batch of %d", round, len(br.Results)))
			}
		default:
			for _, task := range ts {
				task.ID = nextID
				nextID++
				if _, err := sys.Probe(task); err != nil {
					t.Fatal(err)
				}
				res, err := sys.Admit(task)
				if err != nil {
					t.Fatal(err)
				}
				if res.Admitted {
					resident = append(resident, task.ID)
					check(fmt.Sprintf("round %d: admit %d", round, task.ID))
				}
			}
		}
		for len(resident) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(resident))
			if _, err := sys.Release(resident[i]); err != nil {
				t.Fatal(err)
			}
			resident = append(resident[:i], resident[i+1:]...)
			check(fmt.Sprintf("round %d: release", round))
		}
	}
}

// promote flips the follower writable through the HTTP endpoint.
func promote(t *testing.T, srv *httptest.Server) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
}

func TestFailoverEquivalenceEveryIndex(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for _, test := range allTests() {
		for _, snapEvery := range []int{-1, 3} {
			test, snapEvery := test, snapEvery
			t.Run(fmt.Sprintf("%s/snapshotEvery=%d", test.Name(), snapEvery), func(t *testing.T) {
				t.Parallel()
				leaderDir, followerDir := t.TempDir(), t.TempDir()
				leader := admission.NewController(leaderConfig(leaderDir, snapEvery))
				if _, err := leader.Recover(); err != nil {
					t.Fatal(err)
				}
				fctrl, recv, srv := newFollower(t, followerDir)
				ship := connect(t, leader, srv.URL)

				sys, err := leader.CreateSystem("t", 4, test)
				if err != nil {
					t.Fatal(err)
				}
				// Every committed transition is a kill index: flush, then
				// the follower must already be bit-identical.
				commits := 0
				driveReplicated(t, sys, test, 2027, rounds, 0, func(label string) {
					commits++
					flush(t, ship)
					lfp, ffp := sys.Fingerprint(), fingerprintOf(fctrl, "t")
					if lfp != ffp {
						t.Fatalf("kill index %d (%s): follower diverged:\nleader:\n%s\nfollower:\n%s",
							commits, label, lfp, ffp)
					}
				})
				if commits == 0 {
					t.Fatal("workload committed nothing")
				}
				flush(t, ship)
				leaderFP := sys.Fingerprint()
				leaderStats := leader.Stats()

				// Kill the leader: stop shipping, close the journals.
				ship.Stop()
				if err := leader.Close(); err != nil {
					t.Fatal(err)
				}

				// Promote the follower over HTTP; further frames must be
				// fenced off.
				promote(t, srv)
				if fctrl.IsFollower() {
					t.Fatal("controller still follower after promotion")
				}
				if _, _, err := fctrl.ApplyReplicatedRecords("t", 1, [][]byte{[]byte("{}")}); err == nil {
					t.Fatal("promoted follower accepted a replication frame")
				}

				// A fresh recovery of the leader's journal is the oracle.
				rec := admission.NewController(leaderConfig(leaderDir, snapEvery))
				if _, err := rec.Recover(); err != nil {
					t.Fatal(err)
				}
				defer rec.Close()
				rsys, err := rec.System("t")
				if err != nil {
					t.Fatal(err)
				}
				if got := fingerprintOf(fctrl, "t"); got != rsys.Fingerprint() || got != leaderFP {
					t.Fatalf("promoted follower != fresh recovery:\nfollower:\n%s\nrecovered:\n%s", got, rsys.Fingerprint())
				}
				recStats, folStats := rec.Stats(), fctrl.Stats()
				if folStats.Admits != recStats.Admits || folStats.Releases != recStats.Releases ||
					folStats.Systems != recStats.Systems || folStats.Tasks != recStats.Tasks {
					t.Fatalf("stats diverged:\nfollower  %+v\nrecovered %+v", folStats, recStats)
				}
				if folStats.Admits != leaderStats.Admits || folStats.Releases != leaderStats.Releases {
					t.Fatalf("follower stats != leader stats: %+v vs %+v", folStats, leaderStats)
				}

				// Every future verdict identical between the promoted
				// follower and the recovered oracle.
				fsys, err := fctrl.System("t")
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(771))
				gcfg := taskgen.DefaultConfig(4, 0.5, 0.3, 0.4)
				gcfg.Constrained = test.Name() != "EDF-VD"
				probeID := 1 << 20
				for round := 0; round < 3; round++ {
					ts, err := taskgen.Generate(rng, gcfg)
					if err != nil {
						continue
					}
					for _, task := range ts {
						task.ID = probeID
						probeID++
						a, errA := fsys.Probe(task)
						b, errB := rsys.Probe(task)
						if (errA == nil) != (errB == nil) {
							t.Fatalf("probe error divergence: %v vs %v", errA, errB)
						}
						if a.Admitted != b.Admitted || a.Core != b.Core {
							t.Fatalf("verdict divergence on %v: follower %+v vs recovered %+v", task, a, b)
						}
					}
				}
				// The promoted follower serves writes — and journals them.
				if _, err := fsys.Admit(mcs.NewLC(probeID+1, 1, 100_000)); err != nil {
					t.Fatal(err)
				}
				if recv.Applied().Records == 0 {
					t.Fatal("receiver applied no records")
				}
			})
		}
	}
}

// TestFailoverCatchUpFromSnapshot: a follower that attaches after the
// leader has compacted its journal must catch up through a snapshot frame
// and still end bit-identical.
func TestFailoverCatchUpFromSnapshot(t *testing.T) {
	test := allTests()[0]
	leaderDir := t.TempDir()
	leader := admission.NewController(leaderConfig(leaderDir, 4))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	sys, err := leader.CreateSystem("t", 4, test)
	if err != nil {
		t.Fatal(err)
	}
	// Build history across several snapshot truncations before any
	// follower exists.
	driveReplicated(t, sys, test, 909, 4, 0, func(string) {})

	fctrl, recv, srv := newFollower(t, t.TempDir())
	ship := connect(t, leader, srv.URL)
	flush(t, ship)

	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after snapshot catch-up:\n%s\n%s", sys.Fingerprint(), got)
	}
	if recv.Applied().Snapshots == 0 {
		t.Fatal("catch-up used no snapshot frame despite compaction")
	}

	// New traffic keeps streaming as records on top of the snapshot.
	driveReplicated(t, sys, test, 910, 2, 1<<16, func(string) {})
	flush(t, ship)
	if got := fingerprintOf(fctrl, "t"); got != sys.Fingerprint() {
		t.Fatalf("follower diverged after post-snapshot records:\n%s\n%s", sys.Fingerprint(), got)
	}
	leader.Close()
}

// TestFailoverMultiTenantWithRemoval: several tenants with different tests
// and core counts replicate concurrently, and a leader-side removal
// propagates.
func TestFailoverMultiTenantWithRemoval(t *testing.T) {
	leaderDir := t.TempDir()
	leader := admission.NewController(leaderConfig(leaderDir, 6))
	if _, err := leader.Recover(); err != nil {
		t.Fatal(err)
	}
	fctrl, _, srv := newFollower(t, t.TempDir())
	ship := connect(t, leader, srv.URL)

	tests := allTests()
	for i, test := range tests {
		sys, err := leader.CreateSystem(fmt.Sprintf("tenant-%d", i), 2+i%3, test)
		if err != nil {
			t.Fatal(err)
		}
		driveReplicated(t, sys, test, int64(300+i), 2, 0, func(string) {})
	}
	if _, err := leader.CreateSystem("doomed", 2, tests[0]); err != nil {
		t.Fatal(err)
	}
	flush(t, ship)
	if _, err := fctrl.System("doomed"); err != nil {
		t.Fatal("doomed tenant did not replicate before removal")
	}
	if err := leader.RemoveSystem("doomed"); err != nil {
		t.Fatal(err)
	}
	flush(t, ship)
	if _, err := fctrl.System("doomed"); err == nil {
		t.Fatal("removed tenant still live on follower")
	}
	if fmt.Sprint(fctrl.SystemIDs()) != fmt.Sprint(leader.SystemIDs()) {
		t.Fatalf("tenant sets diverged: %v vs %v", fctrl.SystemIDs(), leader.SystemIDs())
	}
	for _, id := range leader.SystemIDs() {
		if fingerprintOf(fctrl, id) != fingerprintOf(leader, id) {
			t.Fatalf("tenant %s diverged", id)
		}
	}
	leader.Close()
}
