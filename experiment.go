package mcsched

import (
	"mcsched/internal/experiments"
	"mcsched/internal/plot"
)

// ---------------------------------------------------------------------------
// Experiments: the paper's evaluation protocol
// ---------------------------------------------------------------------------

// ExperimentConfig describes one acceptance-ratio sweep (Figs. 3–5 of the
// paper): one platform size, deadline model and PH, with a set of
// algorithms evaluated on identical task sets.
type ExperimentConfig = experiments.Config

// ExperimentResult holds one acceptance-ratio curve per algorithm.
type ExperimentResult = experiments.Result

// ExperimentSeries is one algorithm's acceptance curve.
type ExperimentSeries = experiments.Series

// WARConfig describes a weighted-acceptance-ratio sweep over PH (Fig. 6).
type WARConfig = experiments.WARConfig

// WARResult holds one WAR curve per (algorithm, m).
type WARResult = experiments.WARResult

// Improvement summarizes one algorithm's gain over a baseline in the style
// of the paper's headline numbers.
type Improvement = experiments.Improvement

// PlacementExperimentConfig describes a multi-criteria sweep of the online
// placement heuristics: every named (or, by default, every registered)
// placer is scored on identical task sets along acceptance, fragmentation
// and analysis-cost axes.
type PlacementExperimentConfig = experiments.PlacementConfig

// PlacementExperimentResult holds one PlacementScore per heuristic.
type PlacementExperimentResult = experiments.PlacementResult

// PlacementScore is one heuristic's aggregate: task- and set-level
// acceptance, post-release fragmentation, analysis probes per task, and a
// per-UB acceptance curve.
type PlacementScore = experiments.PlacementScore

// RunExperiment executes an acceptance-ratio sweep.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.Run(cfg)
}

// RunPlacementExperiment executes a placement-heuristic sweep.
func RunPlacementExperiment(cfg PlacementExperimentConfig) (PlacementExperimentResult, error) {
	return experiments.RunPlacement(cfg)
}

// PlacementExperimentSummary formats a placement sweep as a fixed-width
// text table, one row per heuristic.
func PlacementExperimentSummary(r PlacementExperimentResult) string {
	return experiments.PlacementSummary(r)
}

// RunWARExperiment executes a weighted-acceptance-ratio sweep.
func RunWARExperiment(cfg WARConfig) (WARResult, error) {
	return experiments.RunWAR(cfg)
}

// Figure3 regenerates one panel of the paper's Fig. 3 (implicit deadlines,
// EDF-VD, PH=0.5) at the given platform size.
func Figure3(m, setsPerUB int, seed int64) (ExperimentResult, error) {
	return experiments.Figure3(m, setsPerUB, seed)
}

// Figure4 regenerates one panel of Fig. 4 (implicit deadlines, ECDF and AMC
// versus the EY baselines).
func Figure4(m, setsPerUB int, seed int64) (ExperimentResult, error) {
	return experiments.Figure4(m, setsPerUB, seed)
}

// Figure5 regenerates one panel of Fig. 5 (constrained deadlines).
func Figure5(m, setsPerUB int, seed int64) (ExperimentResult, error) {
	return experiments.Figure5(m, setsPerUB, seed)
}

// Figure6a regenerates Fig. 6a (implicit deadlines, WAR versus PH).
func Figure6a(setsPerUB int, seed int64) (WARResult, error) {
	return experiments.Figure6a(setsPerUB, seed)
}

// Figure6b regenerates Fig. 6b (constrained deadlines, WAR versus PH).
func Figure6b(setsPerUB int, seed int64) (WARResult, error) {
	return experiments.Figure6b(setsPerUB, seed)
}

// Figure3Algorithms returns the algorithms of Fig. 3.
func Figure3Algorithms() []Algorithm { return experiments.Figure3Algorithms() }

// Figure45Algorithms returns the algorithms of Figs. 4 and 5.
func Figure45Algorithms() []Algorithm { return experiments.Figure45Algorithms() }

// ImprovementsVs compares every series of a result against the named
// baseline.
func ImprovementsVs(r ExperimentResult, baseline string) ([]Improvement, error) {
	return experiments.ImprovementsVs(r, baseline)
}

// SpeedupSurvey is the empirical minimum-speed distribution of an
// algorithm, the companion measurement to the 8/3 speed-up theorem that
// UDP-EDF-VD inherits.
type SpeedupSurvey = experiments.SpeedupSurvey

// SpeedScaled returns the task set as seen by a processor s times faster
// (budgets ⌈C/s⌉, utilizations rederived).
func SpeedScaled(ts TaskSet, s float64) TaskSet { return experiments.SpeedScaled(ts, s) }

// MinSpeed measures the smallest processor speed at which the algorithm
// accepts the task set on m processors (binary search to tol, capped at
// maxSpeed).
func MinSpeed(algo Algorithm, ts TaskSet, m int, maxSpeed, tol float64) (float64, bool) {
	return experiments.MinSpeed(algo, ts, m, maxSpeed, tol)
}

// RunSpeedupSurvey measures MinSpeed over generated task sets with
// realized UB ≤ ubCap.
func RunSpeedupSurvey(algo Algorithm, m, sets int, ubCap float64, seed int64) (SpeedupSurvey, error) {
	return experiments.RunSpeedupSurvey(algo, m, sets, ubCap, seed)
}

// ExperimentSummary renders a result as a fixed-width text table.
func ExperimentSummary(r ExperimentResult) string { return experiments.Summary(r) }

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// Chart is a plottable collection of named series.
type Chart = plot.Chart

// ChartSeries is one line of a Chart.
type ChartSeries = plot.Series

// ChartFromExperiment converts a sweep into an acceptance-ratio chart.
func ChartFromExperiment(r ExperimentResult, title string) Chart {
	return plot.FromSweep(r, title)
}

// ChartFromWAR converts a WAR sweep into a chart with PH on the x axis.
func ChartFromWAR(r WARResult, title string) Chart { return plot.FromWAR(r, title) }

// ChartFromPlacement converts a placement sweep into a chart of full-set
// acceptance over UB, one series per heuristic.
func ChartFromPlacement(r PlacementExperimentResult, title string) Chart {
	return plot.FromPlacement(r, title)
}

// RenderASCII renders a chart as a width×height text canvas.
func RenderASCII(c Chart, width, height int) (string, error) {
	return plot.ASCII(c, width, height)
}

// RenderCSV renders a chart as a comma-separated table.
func RenderCSV(c Chart) (string, error) { return plot.CSV(c) }

// RenderSVG renders a chart as a standalone SVG document.
func RenderSVG(c Chart, width, height int) (string, error) {
	return plot.SVG(c, width, height)
}
